#include "opt/lbfgs.h"

#include <algorithm>
#include <cmath>

#include "opt/workspace.h"
#include "util/error.h"

namespace dvs::opt {

LbfgsReport MinimizeLbfgs(const Objective& objective, Vector& x,
                          const LbfgsOptions& options,
                          LbfgsWorkspace* workspace) {
  ACS_REQUIRE(x.size() == objective.dim(), "start point dimension mismatch");
  LbfgsReport report;

  LbfgsWorkspace local;
  LbfgsWorkspace& ws = workspace != nullptr ? *workspace : local;

  const std::size_t n = x.size();
  Vector& grad = ws.grad;
  grad.assign(n, 0.0);
  double f = objective.ValueAndGradient(x, grad);
  ++report.evaluations;

  // (s, y, rho) history as contiguous rings: `count` live pairs ending at
  // slot (head - 1); the slot vectors keep their capacity across solves.
  std::vector<Vector>& s_history = ws.s_history;
  std::vector<Vector>& y_history = ws.y_history;
  std::vector<double>& rho_history = ws.rho_history;
  const std::size_t memory = std::max<std::size_t>(1, options.memory);
  s_history.resize(memory);
  y_history.resize(memory);
  rho_history.assign(memory, 0.0);
  std::size_t head = 0;   // next slot to write
  std::size_t count = 0;  // live pairs

  // Oldest-first access into the ring (index 0 = oldest live pair).
  const auto slot = [&](std::size_t i) {
    return (head + memory - count + i) % memory;
  };

  Vector& direction = ws.direction;
  Vector& trial = ws.trial;
  Vector& trial_grad = ws.trial_grad;
  direction.resize(n);
  trial.resize(n);
  trial_grad.resize(n);
  std::vector<double>& alpha = ws.alpha;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    report.iterations = iter + 1;
    report.gradient_norm = NormInf(grad);
    if (report.gradient_norm <= options.tolerance) {
      report.status = SolveStatus::kConverged;
      report.final_value = f;
      return report;
    }

    // Two-loop recursion.
    direction = grad;
    alpha.assign(count, 0.0);
    for (std::size_t i = count; i-- > 0;) {
      const std::size_t k = slot(i);
      alpha[i] = rho_history[k] * Dot(s_history[k], direction);
      Axpy(-alpha[i], y_history[k], direction);
    }
    if (count > 0) {
      const std::size_t last = slot(count - 1);
      const Vector& s = s_history[last];
      const Vector& y = y_history[last];
      const double yy = Dot(y, y);
      if (yy > 0.0) {
        Scale(Dot(s, y) / yy, direction);
      }
    }
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t k = slot(i);
      const double beta = rho_history[k] * Dot(y_history[k], direction);
      Axpy(alpha[i] - beta, s_history[k], direction);
    }
    Scale(-1.0, direction);

    double slope = Dot(grad, direction);
    if (slope >= 0.0) {
      // Bad curvature — restart with steepest descent.
      direction = grad;
      Scale(-1.0, direction);
      slope = Dot(grad, direction);
      count = 0;
    }

    double step = 1.0;
    bool accepted = false;
    double f_new = f;
    for (std::size_t bt = 0; bt <= options.max_backtracks; ++bt) {
      for (std::size_t i = 0; i < n; ++i) {
        trial[i] = x[i] + step * direction[i];
      }
      f_new = objective.ValueAndGradient(trial, trial_grad);
      ++report.evaluations;
      if (f_new <= f + options.armijo_c * step * slope) {
        accepted = true;
        break;
      }
      step *= options.backtrack;
    }
    if (!accepted) {
      report.status = SolveStatus::kLineSearchFailed;
      report.final_value = f;
      return report;
    }

    // Curvature pair staged outside the ring: when the ring is full, the
    // head slot IS the oldest live pair, so writing a rejected candidate
    // there would corrupt history.  Commit (swap in) only on acceptance.
    Vector& s = ws.s_candidate;
    Vector& y = ws.y_candidate;
    s.resize(n);
    y.resize(n);
    double sy = 0.0;
    double ss = 0.0;
    double yy_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = trial[i] - x[i];
      y[i] = trial_grad[i] - grad[i];
      sy += s[i] * y[i];
      ss += s[i] * s[i];
      yy_norm += y[i] * y[i];
    }
    if (sy > 1e-12 * std::sqrt(ss) * std::sqrt(yy_norm)) {
      std::swap(s_history[head], s);
      std::swap(y_history[head], y);
      rho_history[head] = 1.0 / sy;
      head = (head + 1) % memory;
      count = std::min(count + 1, memory);
    }

    std::swap(x, trial);
    std::swap(grad, trial_grad);
    f = f_new;
  }

  report.status = SolveStatus::kMaxIterations;
  report.final_value = f;
  report.gradient_norm = NormInf(grad);
  return report;
}

}  // namespace dvs::opt
