#include "opt/lbfgs.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/error.h"

namespace dvs::opt {

LbfgsReport MinimizeLbfgs(const Objective& objective, Vector& x,
                          const LbfgsOptions& options) {
  ACS_REQUIRE(x.size() == objective.dim(), "start point dimension mismatch");
  LbfgsReport report;

  const std::size_t n = x.size();
  Vector grad(n, 0.0);
  double f = objective.ValueAndGradient(x, grad);
  ++report.evaluations;

  std::deque<Vector> s_history;
  std::deque<Vector> y_history;
  std::deque<double> rho_history;

  Vector direction(n);
  Vector trial(n);
  Vector trial_grad(n);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    report.iterations = iter + 1;
    report.gradient_norm = NormInf(grad);
    if (report.gradient_norm <= options.tolerance) {
      report.status = SolveStatus::kConverged;
      report.final_value = f;
      return report;
    }

    // Two-loop recursion.
    direction = grad;
    std::vector<double> alpha(s_history.size(), 0.0);
    for (std::size_t i = s_history.size(); i-- > 0;) {
      alpha[i] = rho_history[i] * Dot(s_history[i], direction);
      Axpy(-alpha[i], y_history[i], direction);
    }
    if (!s_history.empty()) {
      const Vector& s = s_history.back();
      const Vector& y = y_history.back();
      const double yy = Dot(y, y);
      if (yy > 0.0) {
        Scale(Dot(s, y) / yy, direction);
      }
    }
    for (std::size_t i = 0; i < s_history.size(); ++i) {
      const double beta = rho_history[i] * Dot(y_history[i], direction);
      Axpy(alpha[i] - beta, s_history[i], direction);
    }
    Scale(-1.0, direction);

    double slope = Dot(grad, direction);
    if (slope >= 0.0) {
      // Bad curvature — restart with steepest descent.
      direction = grad;
      Scale(-1.0, direction);
      slope = Dot(grad, direction);
      s_history.clear();
      y_history.clear();
      rho_history.clear();
    }

    double step = 1.0;
    bool accepted = false;
    double f_new = f;
    for (std::size_t bt = 0; bt <= options.max_backtracks; ++bt) {
      for (std::size_t i = 0; i < n; ++i) {
        trial[i] = x[i] + step * direction[i];
      }
      f_new = objective.ValueAndGradient(trial, trial_grad);
      ++report.evaluations;
      if (f_new <= f + options.armijo_c * step * slope) {
        accepted = true;
        break;
      }
      step *= options.backtrack;
    }
    if (!accepted) {
      report.status = SolveStatus::kLineSearchFailed;
      report.final_value = f;
      return report;
    }

    Vector s(n);
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = trial[i] - x[i];
      y[i] = trial_grad[i] - grad[i];
    }
    const double sy = Dot(s, y);
    if (sy > 1e-12 * Norm2(s) * Norm2(y)) {
      s_history.push_back(std::move(s));
      y_history.push_back(std::move(y));
      rho_history.push_back(1.0 / sy);
      if (s_history.size() > options.memory) {
        s_history.pop_front();
        y_history.pop_front();
        rho_history.pop_front();
      }
    }

    x = trial;
    grad = trial_grad;
    f = f_new;
  }

  report.status = SolveStatus::kMaxIterations;
  report.final_value = f;
  report.gradient_norm = NormInf(grad);
  return report;
}

}  // namespace dvs::opt
