#include "opt/vec.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace dvs::opt {

double Dot(const Vector& a, const Vector& b) {
  ACS_REQUIRE(a.size() == b.size(), "Dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

double Norm2(const Vector& a) { return std::sqrt(Dot(a, a)); }

double NormInf(const Vector& a) {
  double best = 0.0;
  for (double v : a) {
    best = std::max(best, std::fabs(v));
  }
  return best;
}

void Axpy(double alpha, const Vector& x, Vector& y) {
  ACS_REQUIRE(x.size() == y.size(), "Axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

void Scale(double alpha, Vector& x) {
  for (double& v : x) {
    v *= alpha;
  }
}

Vector Subtract(const Vector& a, const Vector& b) {
  ACS_REQUIRE(a.size() == b.size(), "Subtract: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] - b[i];
  }
  return out;
}

Vector AddScaled(const Vector& a, double alpha, const Vector& b) {
  ACS_REQUIRE(a.size() == b.size(), "AddScaled: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] + alpha * b[i];
  }
  return out;
}

void Fill(Vector& x, double value) {
  std::fill(x.begin(), x.end(), value);
}

}  // namespace dvs::opt
