#include "opt/vec.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/simd.h"

namespace dvs::opt {

// All kernels route through util::simd, which replicates these exact loops
// at the scalar dispatch level and uses AVX2 when the level allows it.

double Dot(const Vector& a, const Vector& b) {
  ACS_REQUIRE(a.size() == b.size(), "Dot: size mismatch");
  return util::simd::Dot(a.data(), b.data(), a.size());
}

double Norm2(const Vector& a) { return std::sqrt(Dot(a, a)); }

double NormInf(const Vector& a) {
  return util::simd::NormInf(a.data(), a.size());
}

void Axpy(double alpha, const Vector& x, Vector& y) {
  ACS_REQUIRE(x.size() == y.size(), "Axpy: size mismatch");
  util::simd::Axpy(alpha, x.data(), y.data(), x.size());
}

void Scale(double alpha, Vector& x) {
  util::simd::Scale(alpha, x.data(), x.size());
}

Vector Subtract(const Vector& a, const Vector& b) {
  ACS_REQUIRE(a.size() == b.size(), "Subtract: size mismatch");
  Vector out(a.size());
  util::simd::Subtract(a.data(), b.data(), out.data(), a.size());
  return out;
}

Vector AddScaled(const Vector& a, double alpha, const Vector& b) {
  ACS_REQUIRE(a.size() == b.size(), "AddScaled: size mismatch");
  Vector out(a.size());
  util::simd::AddScaled(a.data(), alpha, b.data(), out.data(), a.size());
  return out;
}

void Fill(Vector& x, double value) {
  std::fill(x.begin(), x.end(), value);
}

}  // namespace dvs::opt
