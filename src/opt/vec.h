// Dense vector kernels for the NLP solver.
//
// Problems here are small (a few thousand variables), so a std::vector of
// doubles plus a handful of free functions is the right level of machinery —
// no expression templates, no BLAS dependency.
#ifndef ACS_OPT_VEC_H
#define ACS_OPT_VEC_H

#include <cstddef>
#include <vector>

namespace dvs::opt {

using Vector = std::vector<double>;

/// Dot product; requires equal sizes.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm2(const Vector& a);

/// Max-norm.
double NormInf(const Vector& a);

/// y += alpha * x.
void Axpy(double alpha, const Vector& x, Vector& y);

/// x *= alpha.
void Scale(double alpha, Vector& x);

/// out = a - b.
Vector Subtract(const Vector& a, const Vector& b);

/// out = a + alpha * b.
Vector AddScaled(const Vector& a, double alpha, const Vector& b);

/// Sets every element to `value`.
void Fill(Vector& x, double value);

}  // namespace dvs::opt

#endif  // ACS_OPT_VEC_H
