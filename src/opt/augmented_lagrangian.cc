#include "opt/augmented_lagrangian.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/logging.h"

namespace dvs::opt {
namespace {

/// f(x) plus the augmented-Lagrangian terms of the constraints.
class AugmentedObjective final : public Objective {
 public:
  AugmentedObjective(const Objective& base,
                     const std::vector<const ConstraintFunction*>& constraints,
                     const std::vector<double>& multipliers, double penalty)
      : base_(base),
        constraints_(constraints),
        multipliers_(multipliers),
        penalty_(penalty) {}

  std::size_t dim() const override { return base_.dim(); }

  double Value(const Vector& x) const override { return Evaluate(x, nullptr); }

  void Gradient(const Vector& x, Vector& grad) const override {
    grad.assign(dim(), 0.0);
    (void)Evaluate(x, &grad);
  }

  double ValueAndGradient(const Vector& x, Vector& grad) const override {
    grad.assign(dim(), 0.0);
    return Evaluate(x, &grad);
  }

 private:
  double Evaluate(const Vector& x, Vector* grad) const {
    double value = grad != nullptr ? base_.ValueAndGradient(x, *grad)
                                   : base_.Value(x);
    for (std::size_t c = 0; c < constraints_.size(); ++c) {
      const ConstraintFunction& con = *constraints_[c];
      const double cv = con.Evaluate(x);
      const double lambda = multipliers_[c];
      if (con.kind() == ConstraintKind::kGeZero) {
        // Treat as g(x) = -c(x) <= 0.
        const double active = std::max(0.0, lambda / penalty_ - cv);
        value += 0.5 * penalty_ * active * active -
                 0.5 * lambda * lambda / penalty_;
        if (grad != nullptr && active > 0.0) {
          con.AccumulateGradient(x, -penalty_ * active, *grad);
        }
      } else {
        value += lambda * cv + 0.5 * penalty_ * cv * cv;
        if (grad != nullptr) {
          con.AccumulateGradient(x, lambda + penalty_ * cv, *grad);
        }
      }
    }
    return value;
  }

  const Objective& base_;
  const std::vector<const ConstraintFunction*>& constraints_;
  const std::vector<double>& multipliers_;
  double penalty_;
};

double MaxViolation(const std::vector<const ConstraintFunction*>& constraints,
                    const Vector& x) {
  double worst = 0.0;
  for (const ConstraintFunction* con : constraints) {
    worst = std::max(worst, con->Violation(x));
  }
  return worst;
}

}  // namespace

AlmReport MinimizeAlm(const Objective& objective, const FeasibleSet& set,
                      const std::vector<const ConstraintFunction*>& constraints,
                      Vector& x, const AlmOptions& options) {
  ACS_REQUIRE(x.size() == objective.dim(), "start point dimension mismatch");
  AlmReport report;

  if (constraints.empty()) {
    const SpgReport inner = MinimizeSpg(objective, set, x, options.inner);
    report.feasible = true;
    report.inner_status = inner.status;
    report.outer_iterations = 1;
    report.total_inner_iterations = inner.iterations;
    report.evaluations = inner.evaluations;
    report.final_value = inner.final_value;
    return report;
  }

  std::vector<double> multipliers(constraints.size(), 0.0);
  double penalty = options.initial_penalty;
  double inner_tol = options.inner_tol_start;
  double previous_violation = std::numeric_limits<double>::infinity();

  set.Project(x);

  for (std::size_t outer = 0; outer < options.max_outer; ++outer) {
    report.outer_iterations = outer + 1;

    AugmentedObjective augmented(objective, constraints, multipliers, penalty);
    SpgOptions inner_options = options.inner;
    inner_options.tolerance = std::max(options.inner.tolerance, inner_tol);
    const SpgReport inner = MinimizeSpg(augmented, set, x, inner_options);
    report.inner_status = inner.status;
    report.total_inner_iterations += inner.iterations;
    report.evaluations += inner.evaluations;

    const double violation = MaxViolation(constraints, x);
    report.max_violation = violation;
    report.final_penalty = penalty;
    ACS_LOG_DEBUG << "ALM outer " << outer << ": viol=" << violation
                  << " rho=" << penalty << " inner="
                  << SolveStatusName(inner.status) << "/" << inner.iterations;

    if (violation <= options.feasibility_tol &&
        inner_options.tolerance <= options.inner.tolerance * (1.0 + 1e-12)) {
      report.feasible = true;
      break;
    }

    // First-order multiplier updates.
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      const double cv = constraints[c]->Evaluate(x);
      if (constraints[c]->kind() == ConstraintKind::kGeZero) {
        multipliers[c] = std::max(0.0, multipliers[c] - penalty * cv);
      } else {
        multipliers[c] += penalty * cv;
      }
    }

    // Penalty growth when feasibility stalls.
    if (violation > options.violation_shrink * previous_violation &&
        violation > options.feasibility_tol) {
      penalty = std::min(penalty * options.penalty_growth,
                         options.max_penalty);
    }
    previous_violation = violation;
    inner_tol = std::max(inner_tol * 0.1, options.inner.tolerance);
  }

  report.final_value = objective.Value(x);
  report.max_violation = MaxViolation(constraints, x);
  report.feasible = report.max_violation <= options.feasibility_tol;
  ++report.evaluations;
  return report;
}

AlmReport MinimizeAlm(const Objective& objective, const FeasibleSet& set,
                      const std::vector<LinearConstraint>& constraints,
                      Vector& x, const AlmOptions& options) {
  std::vector<LinearConstraintFn> adapters;
  adapters.reserve(constraints.size());
  for (const LinearConstraint& con : constraints) {
    adapters.emplace_back(con);
  }
  std::vector<const ConstraintFunction*> pointers;
  pointers.reserve(adapters.size());
  for (const LinearConstraintFn& fn : adapters) {
    pointers.push_back(&fn);
  }
  return MinimizeAlm(objective, set, pointers, x, options);
}

}  // namespace dvs::opt
