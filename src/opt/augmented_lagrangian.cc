#include "opt/augmented_lagrangian.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "opt/workspace.h"
#include "util/error.h"
#include "util/logging.h"

namespace dvs::opt {
namespace {

// The ALM driver is templated over the constraint-system representation so
// the same outer loop serves both the general ConstraintFunction pointers
// and the flattened all-linear system.  A System exposes:
//   size()                                  — number of rows
//   Kind(c)                                 — row sense
//   Evaluate(c, x)                          — row value
//   Violation(c, x)                         — row violation
//   AccumulateGradient(c, x, weight, grad)  — grad += weight * d row / d x

/// Rows behind ConstraintFunction pointers (the general entry point).
class PointerSystem {
 public:
  explicit PointerSystem(
      const std::vector<const ConstraintFunction*>& constraints)
      : constraints_(&constraints) {}

  std::size_t size() const { return constraints_->size(); }
  ConstraintKind Kind(std::size_t c) const { return (*constraints_)[c]->kind(); }
  double Evaluate(std::size_t c, const Vector& x) const {
    return (*constraints_)[c]->Evaluate(x);
  }
  double Violation(std::size_t c, const Vector& x) const {
    return (*constraints_)[c]->Violation(x);
  }
  void AccumulateGradient(std::size_t c, const Vector& x, double weight,
                          Vector& grad) const {
    (*constraints_)[c]->AccumulateGradient(x, weight, grad);
  }

 private:
  const std::vector<const ConstraintFunction*>* constraints_;
};

/// Rows of one contiguous FlatLinearSystem (the all-linear fast path).
class FlatSystem {
 public:
  explicit FlatSystem(const FlatLinearSystem& flat) : flat_(&flat) {}

  std::size_t size() const { return flat_->rows(); }
  ConstraintKind Kind(std::size_t c) const { return flat_->kind[c]; }
  double Evaluate(std::size_t c, const Vector& x) const {
    return flat_->Evaluate(c, x);
  }
  double Violation(std::size_t c, const Vector& x) const {
    return flat_->Violation(c, x);
  }
  void AccumulateGradient(std::size_t c, const Vector& /*x*/, double weight,
                          Vector& grad) const {
    flat_->AccumulateGradient(c, weight, grad);
  }

 private:
  const FlatLinearSystem* flat_;
};

/// f(x) plus the augmented-Lagrangian terms of the constraints.
///
/// Multipliers and the penalty are constant across one inner solve, so the
/// per-row lambda / rho ratio and the constant -lambda^2 / (2 rho) shift of
/// the >=-row hinge are precomputed once per outer iteration (into
/// workspace buffers) instead of re-divided on every objective evaluation.
/// The precomputed values are the very expressions the inline code used, so
/// evaluations are bit-identical.
template <typename System>
class AugmentedObjective final : public Objective {
 public:
  AugmentedObjective(const Objective& base, const System& system,
                     const std::vector<double>& multipliers, double penalty,
                     std::vector<double>& ratio_scratch,
                     std::vector<double>& shift_scratch)
      : base_(base),
        system_(system),
        multipliers_(multipliers),
        penalty_(penalty),
        ratio_(ratio_scratch),
        shift_(shift_scratch) {
    ratio_.assign(system.size(), 0.0);
    shift_.assign(system.size(), 0.0);
    for (std::size_t c = 0; c < system.size(); ++c) {
      if (system.Kind(c) == ConstraintKind::kGeZero) {
        const double lambda = multipliers[c];
        ratio_[c] = lambda / penalty;
        shift_[c] = 0.5 * lambda * lambda / penalty;
      }
    }
  }

  std::size_t dim() const override { return base_.dim(); }

  double Value(const Vector& x) const override { return Evaluate(x, nullptr); }

  // No zero-fill before delegating: the Objective contract has the base
  // write the full gradient, and the constraint terms accumulate on top.
  void Gradient(const Vector& x, Vector& grad) const override {
    (void)Evaluate(x, &grad);
  }

  double ValueAndGradient(const Vector& x, Vector& grad) const override {
    return Evaluate(x, &grad);
  }

 private:
  double Evaluate(const Vector& x, Vector* grad) const {
    double value = grad != nullptr ? base_.ValueAndGradient(x, *grad)
                                   : base_.Value(x);
    for (std::size_t c = 0; c < system_.size(); ++c) {
      const double cv = system_.Evaluate(c, x);
      if (system_.Kind(c) == ConstraintKind::kGeZero) {
        // Treat as g(x) = -c(x) <= 0.
        const double active = std::max(0.0, ratio_[c] - cv);
        value += 0.5 * penalty_ * active * active - shift_[c];
        if (grad != nullptr && active > 0.0) {
          system_.AccumulateGradient(c, x, -penalty_ * active, *grad);
        }
      } else {
        const double lambda = multipliers_[c];
        value += lambda * cv + 0.5 * penalty_ * cv * cv;
        if (grad != nullptr) {
          system_.AccumulateGradient(c, x, lambda + penalty_ * cv, *grad);
        }
      }
    }
    return value;
  }

  const Objective& base_;
  const System& system_;
  const std::vector<double>& multipliers_;
  double penalty_;
  std::vector<double>& ratio_;  // per >=-row: lambda / rho
  std::vector<double>& shift_;  // per >=-row: (0.5 * lambda * lambda) / rho
};

template <typename System>
double MaxViolation(const System& system, const Vector& x) {
  double worst = 0.0;
  for (std::size_t c = 0; c < system.size(); ++c) {
    worst = std::max(worst, system.Violation(c, x));
  }
  return worst;
}

template <typename System>
AlmReport Drive(const Objective& objective, const FeasibleSet& set,
                const System& system, Vector& x, const AlmOptions& options,
                AlmWorkspace& ws) {
  ACS_REQUIRE(x.size() == objective.dim(), "start point dimension mismatch");
  AlmReport report;

  if (system.size() == 0) {
    const SpgReport inner = MinimizeSpg(objective, set, x, options.inner,
                                        &ws.spg);
    report.feasible = true;
    report.inner_status = inner.status;
    report.outer_iterations = 1;
    report.total_inner_iterations = inner.iterations;
    report.evaluations = inner.evaluations;
    report.final_value = inner.final_value;
    return report;
  }

  std::vector<double>& multipliers = ws.multipliers;
  multipliers.assign(system.size(), 0.0);
  double penalty = options.initial_penalty;
  double inner_tol = options.inner_tol_start;
  double previous_violation = std::numeric_limits<double>::infinity();

  set.Project(x, ws.spg.projection);

  for (std::size_t outer = 0; outer < options.max_outer; ++outer) {
    report.outer_iterations = outer + 1;

    AugmentedObjective<System> augmented(objective, system, multipliers,
                                         penalty, ws.penalty_ratio,
                                         ws.penalty_shift);
    SpgOptions inner_options = options.inner;
    inner_options.tolerance = std::max(options.inner.tolerance, inner_tol);
    const SpgReport inner =
        MinimizeSpg(augmented, set, x, inner_options, &ws.spg);
    report.inner_status = inner.status;
    report.total_inner_iterations += inner.iterations;
    report.evaluations += inner.evaluations;

    const double violation = MaxViolation(system, x);
    report.max_violation = violation;
    report.final_penalty = penalty;
    ACS_LOG_DEBUG << "ALM outer " << outer << ": viol=" << violation
                  << " rho=" << penalty << " inner="
                  << SolveStatusName(inner.status) << "/" << inner.iterations;

    if (violation <= options.feasibility_tol &&
        inner_options.tolerance <= options.inner.tolerance * (1.0 + 1e-12)) {
      report.feasible = true;
      break;
    }

    // First-order multiplier updates.
    for (std::size_t c = 0; c < system.size(); ++c) {
      const double cv = system.Evaluate(c, x);
      if (system.Kind(c) == ConstraintKind::kGeZero) {
        multipliers[c] = std::max(0.0, multipliers[c] - penalty * cv);
      } else {
        multipliers[c] += penalty * cv;
      }
    }

    // Penalty growth when feasibility stalls.
    if (violation > options.violation_shrink * previous_violation &&
        violation > options.feasibility_tol) {
      penalty = std::min(penalty * options.penalty_growth,
                         options.max_penalty);
    }
    previous_violation = violation;
    inner_tol = std::max(inner_tol * 0.1, options.inner.tolerance);
  }

  report.final_value = objective.Value(x);
  report.max_violation = MaxViolation(system, x);
  report.feasible = report.max_violation <= options.feasibility_tol;
  ++report.evaluations;
  return report;
}

}  // namespace

void FlatLinearSystem::Assign(const std::vector<LinearConstraint>& constraints) {
  term_index.clear();
  term_coeff.clear();
  row_begin.clear();
  constant.clear();
  kind.clear();
  row_begin.reserve(constraints.size() + 1);
  constant.reserve(constraints.size());
  kind.reserve(constraints.size());
  for (const LinearConstraint& con : constraints) {
    row_begin.push_back(term_index.size());
    constant.push_back(con.constant);
    kind.push_back(con.kind);
    for (const auto& [index, coeff] : con.terms) {
      term_index.push_back(index);
      term_coeff.push_back(coeff);
    }
  }
  row_begin.push_back(term_index.size());
}

AlmReport MinimizeAlm(const Objective& objective, const FeasibleSet& set,
                      const std::vector<const ConstraintFunction*>& constraints,
                      Vector& x, const AlmOptions& options,
                      AlmWorkspace* workspace) {
  AlmWorkspace local;
  AlmWorkspace& ws = workspace != nullptr ? *workspace : local;
  return Drive(objective, set, PointerSystem(constraints), x, options, ws);
}

AlmReport MinimizeAlm(const Objective& objective, const FeasibleSet& set,
                      const std::vector<LinearConstraint>& constraints,
                      Vector& x, const AlmOptions& options,
                      AlmWorkspace* workspace) {
  AlmWorkspace local;
  AlmWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.flat.Assign(constraints);
  return Drive(objective, set, FlatSystem(ws.flat), x, options, ws);
}

}  // namespace dvs::opt
