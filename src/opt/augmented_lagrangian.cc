#include "opt/augmented_lagrangian.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "opt/workspace.h"
#include "util/error.h"
#include "util/logging.h"

namespace dvs::opt {
namespace {

// The ALM driver is templated over the constraint-system representation so
// the same outer loop serves both the general ConstraintFunction pointers
// and the flattened all-linear system.  A System exposes:
//   size()                                  — number of rows
//   Kind(c)                                 — row sense
//   Evaluate(c, x)                          — row value
//   EvaluateAll(x, out)                     — every row value, in row order
//   Violation(c, x)                         — row violation
//   AccumulateGradient(c, x, weight, grad)  — grad += weight * d row / d x

/// Rows behind ConstraintFunction pointers (the general entry point).
class PointerSystem {
 public:
  explicit PointerSystem(
      const std::vector<const ConstraintFunction*>& constraints)
      : constraints_(&constraints) {}

  std::size_t size() const { return constraints_->size(); }
  ConstraintKind Kind(std::size_t c) const { return (*constraints_)[c]->kind(); }
  double Evaluate(std::size_t c, const Vector& x) const {
    return (*constraints_)[c]->Evaluate(x);
  }
  void EvaluateAll(const Vector& x, std::vector<double>& out) const {
    out.resize(size());
    for (std::size_t c = 0; c < size(); ++c) {
      out[c] = Evaluate(c, x);
    }
  }
  double Violation(std::size_t c, const Vector& x) const {
    return (*constraints_)[c]->Violation(x);
  }
  void AccumulateGradient(std::size_t c, const Vector& x, double weight,
                          Vector& grad) const {
    (*constraints_)[c]->AccumulateGradient(x, weight, grad);
  }

 private:
  const std::vector<const ConstraintFunction*>* constraints_;
};

/// Rows of one contiguous FlatLinearSystem (the all-linear fast path).
class FlatSystem {
 public:
  explicit FlatSystem(const FlatLinearSystem& flat) : flat_(&flat) {}

  std::size_t size() const { return flat_->rows(); }
  ConstraintKind Kind(std::size_t c) const { return flat_->kind[c]; }
  double Evaluate(std::size_t c, const Vector& x) const {
    return flat_->Evaluate(c, x);
  }
  void EvaluateAll(const Vector& x, std::vector<double>& out) const {
    flat_->EvaluateAll(x, out);
  }
  double Violation(std::size_t c, const Vector& x) const {
    return flat_->Violation(c, x);
  }
  void AccumulateGradient(std::size_t c, const Vector& /*x*/, double weight,
                          Vector& grad) const {
    flat_->AccumulateGradient(c, weight, grad);
  }

 private:
  const FlatLinearSystem* flat_;
};

/// f(x) plus the augmented-Lagrangian terms of the constraints.
///
/// Multipliers and the penalty are constant across one inner solve, so the
/// per-row lambda / rho ratio and the constant -lambda^2 / (2 rho) shift of
/// the >=-row hinge are precomputed once per outer iteration (into
/// workspace buffers) instead of re-divided on every objective evaluation.
/// The precomputed values are the very expressions the inline code used, so
/// evaluations are bit-identical.
template <typename System>
class AugmentedObjective final : public Objective {
 public:
  AugmentedObjective(const Objective& base, const System& system,
                     const std::vector<double>& multipliers, double penalty,
                     std::vector<double>& ratio_scratch,
                     std::vector<double>& shift_scratch,
                     std::vector<double>& row_scratch)
      : base_(base),
        system_(system),
        multipliers_(multipliers),
        penalty_(penalty),
        ratio_(ratio_scratch),
        shift_(shift_scratch),
        row_values_(row_scratch) {
    ratio_.assign(system.size(), 0.0);
    shift_.assign(system.size(), 0.0);
    for (std::size_t c = 0; c < system.size(); ++c) {
      if (system.Kind(c) == ConstraintKind::kGeZero) {
        const double lambda = multipliers[c];
        ratio_[c] = lambda / penalty;
        shift_[c] = 0.5 * lambda * lambda / penalty;
      }
    }
  }

  std::size_t dim() const override { return base_.dim(); }

  double Value(const Vector& x) const override { return Evaluate(x, nullptr); }

  // No zero-fill before delegating: the Objective contract has the base
  // write the full gradient, and the constraint terms accumulate on top.
  void Gradient(const Vector& x, Vector& grad) const override {
    (void)Evaluate(x, &grad);
  }

  double ValueAndGradient(const Vector& x, Vector& grad) const override {
    return Evaluate(x, &grad);
  }

 private:
  double Evaluate(const Vector& x, Vector* grad) const {
    double value = grad != nullptr ? base_.ValueAndGradient(x, *grad)
                                   : base_.Value(x);
    // Two phases: batch every row value first (vectorizable — four gathered
    // rows per step on the flat system at AVX2 dispatch), then the hinge
    // algebra and the scatter-indexed gradient accumulation walk the rows
    // in the same order as before, so scalar dispatch is bit-identical.
    system_.EvaluateAll(x, row_values_);
    for (std::size_t c = 0; c < system_.size(); ++c) {
      const double cv = row_values_[c];
      if (system_.Kind(c) == ConstraintKind::kGeZero) {
        // Treat as g(x) = -c(x) <= 0.
        const double active = std::max(0.0, ratio_[c] - cv);
        value += 0.5 * penalty_ * active * active - shift_[c];
        if (grad != nullptr && active > 0.0) {
          system_.AccumulateGradient(c, x, -penalty_ * active, *grad);
        }
      } else {
        const double lambda = multipliers_[c];
        value += lambda * cv + 0.5 * penalty_ * cv * cv;
        if (grad != nullptr) {
          system_.AccumulateGradient(c, x, lambda + penalty_ * cv, *grad);
        }
      }
    }
    return value;
  }

  const Objective& base_;
  const System& system_;
  const std::vector<double>& multipliers_;
  double penalty_;
  std::vector<double>& ratio_;  // per >=-row: lambda / rho
  std::vector<double>& shift_;  // per >=-row: (0.5 * lambda * lambda) / rho
  std::vector<double>& row_values_;  // batched row values (phase one)
};

template <typename System>
double MaxViolation(const System& system, const Vector& x,
                    std::vector<double>& row_scratch) {
  system.EvaluateAll(x, row_scratch);
  double worst = 0.0;
  for (std::size_t c = 0; c < system.size(); ++c) {
    const double value = row_scratch[c];
    const double violation = system.Kind(c) == ConstraintKind::kGeZero
                                 ? (value < 0.0 ? -value : 0.0)
                                 : (value < 0.0 ? -value : value);
    worst = std::max(worst, violation);
  }
  return worst;
}

template <typename System>
AlmReport Drive(const Objective& objective, const FeasibleSet& set,
                const System& system, Vector& x, const AlmOptions& options,
                AlmWorkspace& ws) {
  ACS_REQUIRE(x.size() == objective.dim(), "start point dimension mismatch");
  AlmReport report;

  if (system.size() == 0) {
    SpgOptions inner_options = options.inner;
    inner_options.observer = options.observer;
    const SpgReport inner = MinimizeSpg(objective, set, x, inner_options,
                                        &ws.spg);
    report.feasible = true;
    report.inner_status = inner.status;
    report.outer_iterations = 1;
    report.total_inner_iterations = inner.iterations;
    report.evaluations = inner.evaluations;
    report.final_value = inner.final_value;
    return report;
  }

  // Dual continuation: a size-matched seed restores the previous solve's
  // multipliers and penalty and skips the loose-to-tight tolerance ramp; a
  // null or mismatched seed is the historical cold start, bit-for-bit.
  const bool warm_dual = options.dual_seed != nullptr &&
                         options.dual_seed->size() == system.size();
  std::vector<double>& multipliers = ws.multipliers;
  if (warm_dual) {
    multipliers = *options.dual_seed;
  } else {
    multipliers.assign(system.size(), 0.0);
  }
  double penalty =
      warm_dual ? std::max(options.initial_penalty, options.dual_penalty_seed)
                : options.initial_penalty;
  double inner_tol =
      warm_dual ? options.inner.tolerance : options.inner_tol_start;
  double previous_violation = std::numeric_limits<double>::infinity();

  set.Project(x, ws.spg.projection);

  for (std::size_t outer = 0; outer < options.max_outer; ++outer) {
    report.outer_iterations = outer + 1;

    AugmentedObjective<System> augmented(objective, system, multipliers,
                                         penalty, ws.penalty_ratio,
                                         ws.penalty_shift, ws.row_values);
    SpgOptions inner_options = options.inner;
    inner_options.tolerance = std::max(options.inner.tolerance, inner_tol);
    inner_options.observer = options.observer;
    const SpgReport inner =
        MinimizeSpg(augmented, set, x, inner_options, &ws.spg);
    report.inner_status = inner.status;
    report.total_inner_iterations += inner.iterations;
    report.evaluations += inner.evaluations;

    const double violation = MaxViolation(system, x, ws.row_values);
    report.max_violation = violation;
    report.final_penalty = penalty;
    ACS_LOG_DEBUG << "ALM outer " << outer << ": viol=" << violation
                  << " rho=" << penalty << " inner="
                  << SolveStatusName(inner.status) << "/" << inner.iterations;
    if (options.observer != nullptr) {
      AlmOuterEvent event;
      event.outer = report.outer_iterations;
      event.violation = violation;
      event.penalty = penalty;
      event.inner_tolerance = inner_options.tolerance;
      event.inner_iterations = inner.iterations;
      event.inner_status = inner.status;
      event.evaluations = report.evaluations;
      options.observer->OnAlmOuter(event);
    }

    if (violation <= options.feasibility_tol &&
        inner_options.tolerance <= options.inner.tolerance * (1.0 + 1e-12)) {
      report.feasible = true;
      break;
    }

    // First-order multiplier updates (batched row values, same row order).
    system.EvaluateAll(x, ws.row_values);
    for (std::size_t c = 0; c < system.size(); ++c) {
      const double cv = ws.row_values[c];
      if (system.Kind(c) == ConstraintKind::kGeZero) {
        multipliers[c] = std::max(0.0, multipliers[c] - penalty * cv);
      } else {
        multipliers[c] += penalty * cv;
      }
    }

    // Penalty growth when feasibility stalls.
    if (violation > options.violation_shrink * previous_violation &&
        violation > options.feasibility_tol) {
      penalty = std::min(penalty * options.penalty_growth,
                         options.max_penalty);
    }
    previous_violation = violation;
    inner_tol = std::max(inner_tol * 0.1, options.inner.tolerance);
  }

  report.final_value = objective.Value(x);
  report.max_violation = MaxViolation(system, x, ws.row_values);
  report.feasible = report.max_violation <= options.feasibility_tol;
  ++report.evaluations;
  report.multipliers = multipliers;
  return report;
}

}  // namespace

void FlatLinearSystem::Assign(const std::vector<LinearConstraint>& constraints) {
  term_index.clear();
  term_coeff.clear();
  row_begin.clear();
  constant.clear();
  kind.clear();
  row_begin.reserve(constraints.size() + 1);
  constant.reserve(constraints.size());
  kind.reserve(constraints.size());
  for (const LinearConstraint& con : constraints) {
    row_begin.push_back(term_index.size());
    constant.push_back(con.constant);
    kind.push_back(con.kind);
    for (const auto& [index, coeff] : con.terms) {
      term_index.push_back(index);
      term_coeff.push_back(coeff);
    }
  }
  row_begin.push_back(term_index.size());

  // Slot-major padded mirror for the batched evaluation; bail out when a
  // row exceeds three terms (never happens for the ACS chain system) or an
  // index does not fit the 32-bit gather lanes.
  const std::size_t n_rows = rows();
  packed3 = true;
  for (std::size_t r = 0; r < n_rows && packed3; ++r) {
    if (row_begin[r + 1] - row_begin[r] > 3) {
      packed3 = false;
    }
  }
  for (std::size_t t = 0; t < term_index.size() && packed3; ++t) {
    if (term_index[t] >
        static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
      packed3 = false;
    }
  }
  if (packed3) {
    packed_coeff.assign(3 * n_rows, 0.0);
    packed_idx.assign(3 * n_rows, 0);
    for (std::size_t r = 0; r < n_rows; ++r) {
      const std::size_t b = row_begin[r];
      const std::size_t e = row_begin[r + 1];
      for (std::size_t t = b; t < e; ++t) {
        const std::size_t slot = t - b;
        packed_coeff[slot * n_rows + r] = term_coeff[t];
        packed_idx[slot * n_rows + r] =
            static_cast<std::int32_t>(term_index[t]);
      }
    }
  } else {
    packed_coeff.clear();
    packed_idx.clear();
  }
}

AlmReport MinimizeAlm(const Objective& objective, const FeasibleSet& set,
                      const std::vector<const ConstraintFunction*>& constraints,
                      Vector& x, const AlmOptions& options,
                      AlmWorkspace* workspace) {
  AlmWorkspace local;
  AlmWorkspace& ws = workspace != nullptr ? *workspace : local;
  return Drive(objective, set, PointerSystem(constraints), x, options, ws);
}

AlmReport MinimizeAlm(const Objective& objective, const FeasibleSet& set,
                      const std::vector<LinearConstraint>& constraints,
                      Vector& x, const AlmOptions& options,
                      AlmWorkspace* workspace) {
  AlmWorkspace local;
  AlmWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.flat.Assign(constraints);
  return Drive(objective, set, FlatSystem(ws.flat), x, options, ws);
}

}  // namespace dvs::opt
