// Central finite-difference derivatives — the reference implementation the
// analytic gradients are unit-tested against (never used inside solvers).
#ifndef ACS_OPT_FINITE_DIFF_H
#define ACS_OPT_FINITE_DIFF_H

#include <functional>

#include "opt/problem.h"
#include "opt/vec.h"

namespace dvs::opt {

/// Central-difference gradient of `f` at `x` with step `h` per coordinate.
Vector FiniteDifferenceGradient(const std::function<double(const Vector&)>& f,
                                const Vector& x, double h = 1e-6);

/// Convenience overload for Objective.
Vector FiniteDifferenceGradient(const Objective& objective, const Vector& x,
                                double h = 1e-6);

/// Max relative component-wise error between analytic and FD gradients.
double GradientCheck(const Objective& objective, const Vector& x,
                     double h = 1e-6);

}  // namespace dvs::opt

#endif  // ACS_OPT_FINITE_DIFF_H
