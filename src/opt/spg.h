// Spectral projected gradient (SPG; Birgin, Martínez & Raydan 2000).
//
// The inner solver of the augmented-Lagrangian stack.  Chosen because the
// feasible set of the ACS formulation (boxes on end-times x simplexes on
// workload splits) has a cheap exact projection, and because SPG's
// nonmonotone Armijo search tolerates the piecewise-smooth kinks (max/clamp)
// in the average-energy objective far better than curvature-based methods.
#ifndef ACS_OPT_SPG_H
#define ACS_OPT_SPG_H

#include <cstddef>
#include <string>

#include "opt/problem.h"
#include "opt/vec.h"

namespace dvs::opt {

struct SpgWorkspace;  // opt/workspace.h

struct SpgOptions {
  std::size_t max_iterations = 500;
  double tolerance = 1e-8;        // sup-norm of the projected gradient step
  std::size_t history = 10;       // nonmonotone window (GLL)
  double armijo_c = 1e-4;         // sufficient-decrease constant
  double step_min = 1e-12;        // spectral step clamp
  double step_max = 1e12;
  double backtrack = 0.5;         // line-search contraction factor
  std::size_t max_backtracks = 60;
};

enum class SolveStatus {
  kConverged,        // projected-gradient criterion met
  kMaxIterations,    // hit the iteration budget (result still usable)
  kLineSearchFailed  // no descent step found (kink or numerical floor)
};

const char* SolveStatusName(SolveStatus status);

struct SpgReport {
  SolveStatus status = SolveStatus::kMaxIterations;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
  double final_value = 0.0;
  double criterion = 0.0;  // final sup-norm of projected step
};

/// Minimises `objective` over `set` starting from `x` (modified in place,
/// projected first).  `workspace` (optional) supplies reusable scratch
/// buffers — results are bit-identical with or without it; a warm workspace
/// just makes the solve allocation-free (see opt/workspace.h).
SpgReport MinimizeSpg(const Objective& objective, const FeasibleSet& set,
                      Vector& x, const SpgOptions& options = {},
                      SpgWorkspace* workspace = nullptr);

}  // namespace dvs::opt

#endif  // ACS_OPT_SPG_H
