// Spectral projected gradient (SPG; Birgin, Martínez & Raydan 2000).
//
// The inner solver of the augmented-Lagrangian stack.  Chosen because the
// feasible set of the ACS formulation (boxes on end-times x simplexes on
// workload splits) has a cheap exact projection, and because SPG's
// nonmonotone Armijo search tolerates the piecewise-smooth kinks (max/clamp)
// in the average-energy objective far better than curvature-based methods.
#ifndef ACS_OPT_SPG_H
#define ACS_OPT_SPG_H

#include <cstddef>
#include <string>

#include "opt/problem.h"
#include "opt/vec.h"

namespace dvs::opt {

struct SpgWorkspace;  // opt/workspace.h

enum class SolveStatus {
  kConverged,        // projected-gradient criterion met
  kMaxIterations,    // hit the iteration budget (result still usable)
  kLineSearchFailed  // no descent step found (kink or numerical floor)
};

const char* SolveStatusName(SolveStatus status);

/// One accepted SPG iteration, as the solver saw it (convergence-trace
/// observation; see SolveObserver).
struct SpgIterationEvent {
  std::size_t iteration = 0;    // 1-based accepted-iteration index
  double value = 0.0;           // objective after the accepted step
  double criterion = 0.0;       // projected-gradient sup-norm at entry
  double step = 0.0;            // spectral (BB) step for the next iterate
  double step_length = 0.0;     // accepted Armijo step length lambda
  std::size_t backtracks = 0;   // line-search contractions this iteration
  std::size_t evaluations = 0;  // cumulative objective evaluations
};

/// One ALM outer iteration (multiplier/penalty update cycle).  Lives here
/// beside SpgIterationEvent so a single observer interface covers the
/// whole solver stack; augmented_lagrangian.h completes the picture.
struct AlmOuterEvent {
  std::size_t outer = 0;             // 1-based outer-iteration index
  double violation = 0.0;            // constraint sup-norm after the inner solve
  double penalty = 0.0;              // rho used by this outer iteration
  double inner_tolerance = 0.0;      // continuation tolerance this cycle
  std::size_t inner_iterations = 0;  // the inner SPG's iteration count
  SolveStatus inner_status = SolveStatus::kMaxIterations;
  std::size_t evaluations = 0;       // cumulative objective evaluations
};

/// Per-iteration solver observation hooks.  Observation-only by contract:
/// implementations must not mutate solver state, and the solvers' floating
/// point trajectory is identical with or without an observer attached (the
/// hook sits after each accepted step, off the arithmetic path).  Called
/// from whichever thread runs the solve; the obs-layer recorder serialises
/// its sink internally.
class SolveObserver {
 public:
  virtual ~SolveObserver() = default;
  virtual void OnSpgIteration(const SpgIterationEvent& event) = 0;
  virtual void OnAlmOuter(const AlmOuterEvent& event) = 0;
};

struct SpgOptions {
  std::size_t max_iterations = 500;
  double tolerance = 1e-8;        // sup-norm of the projected gradient step
  std::size_t history = 10;       // nonmonotone window (GLL)
  double armijo_c = 1e-4;         // sufficient-decrease constant
  double step_min = 1e-12;        // spectral step clamp
  double step_max = 1e12;
  double backtrack = 0.5;         // line-search contraction factor
  std::size_t max_backtracks = 60;
  /// Optional per-iteration observer (convergence tracing).  Non-owning;
  /// null (the default) skips the hook entirely.  Not part of the solve
  /// identity: caches comparing SpgOptions ignore it
  /// (core::SameSchedulerOptions).
  SolveObserver* observer = nullptr;
};

struct SpgReport {
  SolveStatus status = SolveStatus::kMaxIterations;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
  double final_value = 0.0;
  double criterion = 0.0;  // final sup-norm of projected step
};

/// Minimises `objective` over `set` starting from `x` (modified in place,
/// projected first).  `workspace` (optional) supplies reusable scratch
/// buffers — results are bit-identical with or without it; a warm workspace
/// just makes the solve allocation-free (see opt/workspace.h).
SpgReport MinimizeSpg(const Objective& objective, const FeasibleSet& set,
                      Vector& x, const SpgOptions& options = {},
                      SpgWorkspace* workspace = nullptr);

}  // namespace dvs::opt

#endif  // ACS_OPT_SPG_H
