#include "opt/finite_diff.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace dvs::opt {

Vector FiniteDifferenceGradient(const std::function<double(const Vector&)>& f,
                                const Vector& x, double h) {
  ACS_REQUIRE(h > 0.0, "finite-difference step must be positive");
  Vector grad(x.size(), 0.0);
  Vector probe = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double save = probe[i];
    probe[i] = save + h;
    const double fp = f(probe);
    probe[i] = save - h;
    const double fm = f(probe);
    probe[i] = save;
    grad[i] = (fp - fm) / (2.0 * h);
  }
  return grad;
}

Vector FiniteDifferenceGradient(const Objective& objective, const Vector& x,
                                double h) {
  return FiniteDifferenceGradient(
      [&objective](const Vector& p) { return objective.Value(p); }, x, h);
}

double GradientCheck(const Objective& objective, const Vector& x, double h) {
  Vector analytic(x.size(), 0.0);
  objective.Gradient(x, analytic);
  const Vector numeric = FiniteDifferenceGradient(objective, x, h);
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double scale =
        std::max({std::fabs(analytic[i]), std::fabs(numeric[i]), 1.0});
    worst = std::max(worst, std::fabs(analytic[i] - numeric[i]) / scale);
  }
  return worst;
}

}  // namespace dvs::opt
