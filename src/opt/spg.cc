#include "opt/spg.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/error.h"
#include "util/logging.h"

namespace dvs::opt {

const char* SolveStatusName(SolveStatus status) {
  switch (status) {
    case SolveStatus::kConverged:
      return "converged";
    case SolveStatus::kMaxIterations:
      return "max-iterations";
    case SolveStatus::kLineSearchFailed:
      return "line-search-failed";
  }
  return "unknown";
}

SpgReport MinimizeSpg(const Objective& objective, const FeasibleSet& set,
                      Vector& x, const SpgOptions& options) {
  ACS_REQUIRE(x.size() == objective.dim(), "start point dimension mismatch");
  SpgReport report;

  set.Project(x);
  Vector grad(x.size(), 0.0);
  double f = objective.ValueAndGradient(x, grad);
  ++report.evaluations;

  std::deque<double> recent{f};
  double step = 1.0;
  Vector trial(x.size());
  Vector trial_grad(x.size());
  Vector direction(x.size());

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    report.iterations = iter + 1;

    // Projected-gradient direction with the current spectral step.
    for (std::size_t i = 0; i < x.size(); ++i) {
      trial[i] = x[i] - step * grad[i];
    }
    set.Project(trial);
    for (std::size_t i = 0; i < x.size(); ++i) {
      direction[i] = trial[i] - x[i];
    }

    // Convergence: unit-step projected gradient displacement.
    Vector unit_probe(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      unit_probe[i] = x[i] - grad[i];
    }
    set.Project(unit_probe);
    double criterion = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      criterion = std::max(criterion, std::fabs(unit_probe[i] - x[i]));
    }
    report.criterion = criterion;
    if (criterion <= options.tolerance) {
      report.status = SolveStatus::kConverged;
      report.final_value = f;
      return report;
    }

    const double slope = Dot(grad, direction);
    if (slope >= 0.0) {
      // Projection produced a non-descent direction (can happen exactly at
      // a kink); fall back to the raw projected-gradient step.
      report.status = SolveStatus::kLineSearchFailed;
      report.final_value = f;
      return report;
    }

    const double f_ref = *std::max_element(recent.begin(), recent.end());
    double lambda = 1.0;
    bool accepted = false;
    double f_new = f;
    for (std::size_t bt = 0; bt <= options.max_backtracks; ++bt) {
      for (std::size_t i = 0; i < x.size(); ++i) {
        trial[i] = x[i] + lambda * direction[i];
      }
      // Points on the chord between two feasible points stay feasible for
      // convex sets, so no re-projection is needed.
      f_new = objective.ValueAndGradient(trial, trial_grad);
      ++report.evaluations;
      if (f_new <= f_ref + options.armijo_c * lambda * slope) {
        accepted = true;
        break;
      }
      lambda *= options.backtrack;
    }
    if (!accepted) {
      ACS_LOG_DEBUG << "SPG line search failed at iter " << iter
                    << " (f=" << f << ")";
      report.status = SolveStatus::kLineSearchFailed;
      report.final_value = f;
      return report;
    }

    // Barzilai-Borwein spectral step from the accepted move.
    double sts = 0.0;
    double sty = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double s = lambda * direction[i];
      const double y = trial_grad[i] - grad[i];
      sts += s * s;
      sty += s * y;
    }
    step = (sty > 0.0)
               ? std::clamp(sts / sty, options.step_min, options.step_max)
               : options.step_max;

    x = trial;
    grad = trial_grad;
    f = f_new;
    recent.push_back(f);
    if (recent.size() > options.history) {
      recent.pop_front();
    }
  }

  report.status = SolveStatus::kMaxIterations;
  report.final_value = f;
  return report;
}

}  // namespace dvs::opt
