#include "opt/spg.h"

#include <algorithm>
#include <cmath>

#include "opt/workspace.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/simd.h"

namespace dvs::opt {

const char* SolveStatusName(SolveStatus status) {
  switch (status) {
    case SolveStatus::kConverged:
      return "converged";
    case SolveStatus::kMaxIterations:
      return "max-iterations";
    case SolveStatus::kLineSearchFailed:
      return "line-search-failed";
  }
  return "unknown";
}

SpgReport MinimizeSpg(const Objective& objective, const FeasibleSet& set,
                      Vector& x, const SpgOptions& options,
                      SpgWorkspace* workspace) {
  ACS_REQUIRE(x.size() == objective.dim(), "start point dimension mismatch");
  SpgReport report;

  // Caller-provided scratch keeps the whole solve allocation-free after
  // warm-up; a call-local workspace gives identical results otherwise.
  SpgWorkspace local;
  SpgWorkspace& ws = workspace != nullptr ? *workspace : local;

  set.Project(x, ws.projection);
  Vector& grad = ws.grad;
  grad.assign(x.size(), 0.0);
  double f = objective.ValueAndGradient(x, grad);
  ++report.evaluations;

  std::vector<double>& recent = ws.recent;
  recent.clear();
  recent.push_back(f);
  double step = 1.0;
  Vector& trial = ws.trial;
  Vector& trial_grad = ws.trial_grad;
  Vector& direction = ws.direction;
  trial.resize(x.size());
  trial_grad.resize(x.size());
  direction.resize(x.size());

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    report.iterations = iter + 1;

    // Projected-gradient direction with the current spectral step
    // (x + (-step) * grad is bit-identical to x - step * grad).
    util::simd::AddScaled(x.data(), -step, grad.data(), trial.data(),
                          x.size());
    set.Project(trial, ws.projection);
    // Direction and its slope against the gradient in one pass (at scalar
    // dispatch the sum accumulates in index order, exactly as Dot would).
    const double slope = util::simd::StepAndSlope(
        x.data(), grad.data(), trial.data(), direction.data(), x.size());

    // Convergence: unit-step projected gradient displacement.  The set may
    // return early with a lower bound once it exceeds the tolerance (the
    // stop decision is identical either way; see FeasibleSet::SpgCriterion).
    const double criterion =
        set.SpgCriterion(x, grad, options.tolerance, ws.projection);
    report.criterion = criterion;
    if (criterion <= options.tolerance) {
      report.status = SolveStatus::kConverged;
      report.final_value = f;
      return report;
    }
    if (slope >= 0.0) {
      // Projection produced a non-descent direction (can happen exactly at
      // a kink); fall back to the raw projected-gradient step.
      report.status = SolveStatus::kLineSearchFailed;
      report.final_value = f;
      return report;
    }

    const double f_ref = *std::max_element(recent.begin(), recent.end());
    double lambda = 1.0;
    bool accepted = false;
    double f_new = f;
    std::size_t backtracks = 0;
    for (std::size_t bt = 0; bt <= options.max_backtracks; ++bt) {
      backtracks = bt;
      util::simd::AddScaled(x.data(), lambda, direction.data(), trial.data(),
                            x.size());
      // Points on the chord between two feasible points stay feasible for
      // convex sets, so no re-projection is needed.
      f_new = objective.ValueAndGradient(trial, trial_grad);
      ++report.evaluations;
      if (f_new <= f_ref + options.armijo_c * lambda * slope) {
        accepted = true;
        break;
      }
      lambda *= options.backtrack;
    }
    if (!accepted) {
      ACS_LOG_DEBUG << "SPG line search failed at iter " << iter
                    << " (f=" << f << ")";
      report.status = SolveStatus::kLineSearchFailed;
      report.final_value = f;
      return report;
    }

    // Barzilai-Borwein spectral step from the accepted move.
    double sts = 0.0;
    double sty = 0.0;
    util::simd::SpectralPair(lambda, direction.data(), grad.data(),
                             trial_grad.data(), x.size(), &sts, &sty);
    step = (sty > 0.0)
               ? std::clamp(sts / sty, options.step_min, options.step_max)
               : options.step_max;

    if (options.observer != nullptr) {
      // Observation only — reads the accepted state, touches nothing the
      // arithmetic path uses, so traced and untraced solves are
      // bit-identical.
      SpgIterationEvent event;
      event.iteration = report.iterations;
      event.value = f_new;
      event.criterion = criterion;
      event.step = step;
      event.step_length = lambda;
      event.backtracks = backtracks;
      event.evaluations = report.evaluations;
      options.observer->OnSpgIteration(event);
    }

    std::swap(x, trial);
    std::swap(grad, trial_grad);
    f = f_new;
    recent.push_back(f);
    if (recent.size() > options.history) {
      recent.erase(recent.begin());
    }
  }

  report.status = SolveStatus::kMaxIterations;
  report.final_value = f;
  return report;
}

}  // namespace dvs::opt
