#include "opt/problem.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace dvs::opt {

BoxSimplexSet::BoxSimplexSet(std::size_t dim)
    : lo_(dim, -kNoBound), hi_(dim, kNoBound), in_simplex_(dim, false) {}

void BoxSimplexSet::SetBounds(std::size_t i, double lo, double hi) {
  ACS_REQUIRE(i < lo_.size(), "variable index out of range");
  ACS_REQUIRE(lo <= hi, "lower bound exceeds upper bound");
  ACS_REQUIRE(!in_simplex_[i], "variable already owned by a simplex group");
  lo_[i] = lo;
  hi_[i] = hi;
}

void BoxSimplexSet::AddSimplex(std::vector<std::size_t> indices,
                               double total) {
  ACS_REQUIRE(!indices.empty(), "empty simplex group");
  ACS_REQUIRE(total >= 0.0, "simplex total must be non-negative");
  for (std::size_t idx : indices) {
    ACS_REQUIRE(idx < lo_.size(), "simplex index out of range");
    ACS_REQUIRE(!in_simplex_[idx], "variable reused across simplex groups");
    ACS_REQUIRE(lo_[idx] == -kNoBound && hi_[idx] == kNoBound,
                "simplex variable must not carry box bounds");
    in_simplex_[idx] = true;
  }
  simplexes_.push_back(Simplex{std::move(indices), total});
}

void BoxSimplexSet::Project(Vector& x) const {
  ACS_REQUIRE(x.size() == lo_.size(), "dimension mismatch in projection");
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (in_simplex_[i]) {
      continue;
    }
    x[i] = std::min(std::max(x[i], lo_[i]), hi_[i]);
  }
  std::vector<double> scratch;
  for (const Simplex& group : simplexes_) {
    scratch.resize(group.indices.size());
    for (std::size_t j = 0; j < group.indices.size(); ++j) {
      scratch[j] = x[group.indices[j]];
    }
    ProjectOntoSimplex(scratch, group.total);
    for (std::size_t j = 0; j < group.indices.size(); ++j) {
      x[group.indices[j]] = scratch[j];
    }
  }
}

void ProjectOntoSimplex(std::vector<double>& values, double total) {
  ACS_REQUIRE(!values.empty(), "empty vector in simplex projection");
  ACS_REQUIRE(total >= 0.0, "simplex total must be non-negative");
  if (values.size() == 1) {
    values[0] = total;
    return;
  }
  // Held-Wolfe-Crowder: find tau with sum max(0, v_i - tau) = total.
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double running = 0.0;
  double tau = 0.0;
  std::size_t support = sorted.size();
  for (std::size_t k = 0; k < sorted.size(); ++k) {
    running += sorted[k];
    const double candidate =
        (running - total) / static_cast<double>(k + 1);
    if (k + 1 == sorted.size() || sorted[k + 1] <= candidate) {
      tau = candidate;
      support = k + 1;
      break;
    }
  }
  (void)support;
  for (double& v : values) {
    v = std::max(0.0, v - tau);
  }
}

double LinearConstraint::Evaluate(const Vector& x) const {
  double acc = constant;
  for (const auto& [index, coeff] : terms) {
    acc += coeff * x[index];
  }
  return acc;
}

double LinearConstraint::Violation(const Vector& x) const {
  const double value = Evaluate(x);
  switch (kind) {
    case Kind::kGeZero:
      return std::max(0.0, -value);
    case Kind::kEqZero:
      return std::fabs(value);
  }
  return 0.0;
}

double ConstraintFunction::Violation(const Vector& x) const {
  const double value = Evaluate(x);
  switch (kind()) {
    case ConstraintKind::kGeZero:
      return std::max(0.0, -value);
    case ConstraintKind::kEqZero:
      return std::fabs(value);
  }
  return 0.0;
}

}  // namespace dvs::opt
