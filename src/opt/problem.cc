#include "opt/problem.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"
#include "util/simd.h"

namespace dvs::opt {
namespace {

/// Descending compare-exchange.
inline void CswapDesc(double& a, double& b) {
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  a = hi;
  b = lo;
}

/// Sorts v[0..m) descending for m <= 8 via branchless sorting networks —
/// the same sorted values std::sort(greater) produces, at a fraction of the
/// cost for the small groups that dominate the budget simplexes.
inline void SortDescSmall(double* v, std::size_t m) {
  switch (m) {
    case 4:
      CswapDesc(v[0], v[1]);
      CswapDesc(v[2], v[3]);
      CswapDesc(v[0], v[2]);
      CswapDesc(v[1], v[3]);
      CswapDesc(v[1], v[2]);
      break;
    case 5:
      CswapDesc(v[0], v[1]);
      CswapDesc(v[3], v[4]);
      CswapDesc(v[2], v[4]);
      CswapDesc(v[2], v[3]);
      CswapDesc(v[1], v[4]);
      CswapDesc(v[0], v[3]);
      CswapDesc(v[0], v[2]);
      CswapDesc(v[1], v[3]);
      CswapDesc(v[1], v[2]);
      break;
    case 6:
      CswapDesc(v[1], v[2]);
      CswapDesc(v[4], v[5]);
      CswapDesc(v[0], v[2]);
      CswapDesc(v[3], v[5]);
      CswapDesc(v[0], v[1]);
      CswapDesc(v[3], v[4]);
      CswapDesc(v[2], v[5]);
      CswapDesc(v[0], v[3]);
      CswapDesc(v[1], v[4]);
      CswapDesc(v[2], v[4]);
      CswapDesc(v[1], v[3]);
      CswapDesc(v[2], v[3]);
      break;
    case 7:
      CswapDesc(v[1], v[2]);
      CswapDesc(v[3], v[4]);
      CswapDesc(v[5], v[6]);
      CswapDesc(v[0], v[2]);
      CswapDesc(v[3], v[5]);
      CswapDesc(v[4], v[6]);
      CswapDesc(v[0], v[1]);
      CswapDesc(v[4], v[5]);
      CswapDesc(v[2], v[6]);
      CswapDesc(v[0], v[4]);
      CswapDesc(v[1], v[5]);
      CswapDesc(v[0], v[3]);
      CswapDesc(v[2], v[5]);
      CswapDesc(v[1], v[3]);
      CswapDesc(v[2], v[4]);
      CswapDesc(v[2], v[3]);
      break;
    case 8:
      CswapDesc(v[0], v[1]);
      CswapDesc(v[2], v[3]);
      CswapDesc(v[4], v[5]);
      CswapDesc(v[6], v[7]);
      CswapDesc(v[0], v[2]);
      CswapDesc(v[1], v[3]);
      CswapDesc(v[4], v[6]);
      CswapDesc(v[5], v[7]);
      CswapDesc(v[1], v[2]);
      CswapDesc(v[5], v[6]);
      CswapDesc(v[0], v[4]);
      CswapDesc(v[3], v[7]);
      CswapDesc(v[1], v[5]);
      CswapDesc(v[2], v[6]);
      CswapDesc(v[1], v[4]);
      CswapDesc(v[3], v[6]);
      CswapDesc(v[2], v[4]);
      CswapDesc(v[3], v[5]);
      CswapDesc(v[3], v[4]);
      break;
    default:
      std::sort(v, v + m, std::greater<double>());
      break;
  }
}

}  // namespace

double FeasibleSet::SpgCriterion(const Vector& x, const Vector& grad,
                                 double /*threshold*/,
                                 ProjectionScratch& scratch) const {
  // Generic sets: project the unit-step probe in full and measure.
  std::vector<double>& probe = scratch.values;
  probe.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    probe[i] = x[i] - grad[i];
  }
  Project(probe);
  double criterion = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    criterion = std::max(criterion, std::fabs(probe[i] - x[i]));
  }
  return criterion;
}

BoxSimplexSet::BoxSimplexSet(std::size_t dim)
    : lo_(dim, -kNoBound),
      hi_(dim, kNoBound),
      in_simplex_(dim, false),
      box_mask_(dim, 1.0) {}

void BoxSimplexSet::SetBounds(std::size_t i, double lo, double hi) {
  ACS_REQUIRE(i < lo_.size(), "variable index out of range");
  ACS_REQUIRE(lo <= hi, "lower bound exceeds upper bound");
  ACS_REQUIRE(!in_simplex_[i], "variable already owned by a simplex group");
  lo_[i] = lo;
  hi_[i] = hi;
}

void BoxSimplexSet::AddSimplex(std::vector<std::size_t> indices,
                               double total) {
  ACS_REQUIRE(!indices.empty(), "empty simplex group");
  ACS_REQUIRE(total >= 0.0, "simplex total must be non-negative");
  for (std::size_t idx : indices) {
    ACS_REQUIRE(idx < lo_.size(), "simplex index out of range");
    ACS_REQUIRE(!in_simplex_[idx], "variable reused across simplex groups");
    ACS_REQUIRE(lo_[idx] == -kNoBound && hi_[idx] == kNoBound,
                "simplex variable must not carry box bounds");
    in_simplex_[idx] = true;
    box_mask_[idx] = 0.0;
  }
  simplexes_.push_back(Simplex{std::move(indices), total});
}

void BoxSimplexSet::Project(Vector& x) const {
  ProjectionScratch scratch;
  Project(x, scratch);
}

void BoxSimplexSet::Project(Vector& x, ProjectionScratch& scratch) const {
  ACS_REQUIRE(x.size() == lo_.size(), "dimension mismatch in projection");
  // Simplex-owned variables carry (-inf, +inf) bounds (enforced by
  // AddSimplex), so clamping them is an exact identity — the clamp runs
  // branchless over every variable instead of testing membership.
  util::simd::ClampBox(lo_.data(), hi_.data(), x.data(), x.size());
  for (const Simplex& group : simplexes_) {
    if (group.indices.size() == 2) {
      // In-place two-element projection (the dominant group size): same
      // closed form as ProjectOntoSimplex's two-element case, applied
      // straight to x without the gather/scatter round-trip.
      double& x0 = x[group.indices[0]];
      double& x1 = x[group.indices[1]];
      const double a = std::max(x0, x1);
      const double b = std::min(x0, x1);
      double tau = a - group.total;
      if (b > tau) {
        tau = ((a + b) - group.total) / 2.0;
      }
      x0 = std::max(0.0, x0 - tau);
      x1 = std::max(0.0, x1 - tau);
      continue;
    }
    if (group.indices.size() == 3) {
      double& x0 = x[group.indices[0]];
      double& x1 = x[group.indices[1]];
      double& x2 = x[group.indices[2]];
      double a = x0;
      double b = x1;
      double c = x2;
      if (a < b) std::swap(a, b);
      if (b < c) std::swap(b, c);
      if (a < b) std::swap(a, b);
      double running = a;
      double tau = running - group.total;
      if (b > tau) {
        running += b;
        tau = (running - group.total) / 2.0;
        if (c > tau) {
          running += c;
          tau = (running - group.total) / 3.0;
        }
      }
      x0 = std::max(0.0, x0 - tau);
      x1 = std::max(0.0, x1 - tau);
      x2 = std::max(0.0, x2 - tau);
      continue;
    }
    // General case: sort a descending copy to find tau, then shift the
    // group in place — same arithmetic as ProjectOntoSimplex without the
    // gather/scatter round-trip through a second buffer.
    std::vector<double>& sorted = scratch.sorted;
    sorted.resize(group.indices.size());
    for (std::size_t j = 0; j < group.indices.size(); ++j) {
      sorted[j] = x[group.indices[j]];
    }
    SortDescSmall(sorted.data(), sorted.size());
    double running = 0.0;
    double tau = 0.0;
    for (std::size_t k = 0; k < sorted.size(); ++k) {
      running += sorted[k];
      const double candidate =
          (running - group.total) / static_cast<double>(k + 1);
      if (k + 1 == sorted.size() || sorted[k + 1] <= candidate) {
        tau = candidate;
        break;
      }
    }
    for (std::size_t idx : group.indices) {
      x[idx] = std::max(0.0, x[idx] - tau);
    }
  }
}

double BoxSimplexSet::SpgCriterion(const Vector& x, const Vector& grad,
                                   double threshold,
                                   ProjectionScratch& scratch) const {
  ACS_REQUIRE(x.size() == lo_.size(), "dimension mismatch in criterion");
  // The set is separable, so each non-simplex coordinate's displacement is
  // exactly |clamp(x_i - g_i) - x_i|.  Their running max is a sound lower
  // bound on the full criterion: once it exceeds the threshold the solver's
  // "not converged" decision is already fixed and the simplex projections
  // can be skipped.  `box_mask_` zeroes simplex-owned displacements so the
  // sweep runs branch-free (and vectorized at AVX2 dispatch).
  double criterion = util::simd::BoxCriterion(
      x.data(), grad.data(), lo_.data(), hi_.data(), box_mask_.data(),
      x.size(), threshold);
  if (criterion > threshold) {
    // Decision fixed ("not converged"); no need to finish the sweep.
    return criterion;
  }
  // Possibly converged: finish exactly with the simplex groups.
  std::vector<double>& values = scratch.values;
  for (const Simplex& group : simplexes_) {
    values.resize(group.indices.size());
    for (std::size_t j = 0; j < group.indices.size(); ++j) {
      const std::size_t idx = group.indices[j];
      values[j] = x[idx] - grad[idx];
    }
    ProjectOntoSimplex(values, group.total, scratch.sorted);
    for (std::size_t j = 0; j < group.indices.size(); ++j) {
      criterion = std::max(
          criterion, std::fabs(values[j] - x[group.indices[j]]));
    }
  }
  return criterion;
}

void ProjectOntoSimplex(std::vector<double>& values, double total) {
  std::vector<double> sorted_scratch;
  ProjectOntoSimplex(values, total, sorted_scratch);
}

void ProjectOntoSimplex(std::vector<double>& values, double total,
                        std::vector<double>& sorted_scratch) {
  ACS_REQUIRE(!values.empty(), "empty vector in simplex projection");
  ACS_REQUIRE(total >= 0.0, "simplex total must be non-negative");
  if (values.size() == 1) {
    values[0] = total;
    return;
  }
  // Held-Wolfe-Crowder: find tau with sum max(0, v_i - tau) = total.
  if (values.size() == 2) {
    // Closed-form two-element case — a dominant group size in the ACS
    // budget simplexes.  Arithmetic mirrors the general loop exactly
    // (same running-sum order, same divisors), so results are bit-identical.
    const double a = std::max(values[0], values[1]);
    const double b = std::min(values[0], values[1]);
    double tau = a - total;  // (running - total) / 1
    if (b > tau) {
      tau = ((a + b) - total) / 2.0;
    }
    values[0] = std::max(0.0, values[0] - tau);
    values[1] = std::max(0.0, values[1] - tau);
    return;
  }
  if (values.size() == 3) {
    // Three-element case via a sorting network; running sums and divisors
    // match the general loop term for term.
    double a = values[0];
    double b = values[1];
    double c = values[2];
    if (a < b) std::swap(a, b);
    if (b < c) std::swap(b, c);
    if (a < b) std::swap(a, b);
    double running = a;
    double tau = running - total;  // (running - total) / 1
    if (b > tau) {
      running += b;
      tau = (running - total) / 2.0;
      if (c > tau) {
        running += c;
        tau = (running - total) / 3.0;
      }
    }
    values[0] = std::max(0.0, values[0] - tau);
    values[1] = std::max(0.0, values[1] - tau);
    values[2] = std::max(0.0, values[2] - tau);
    return;
  }
  std::vector<double>& sorted = sorted_scratch;
  sorted.assign(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double running = 0.0;
  double tau = 0.0;
  for (std::size_t k = 0; k < sorted.size(); ++k) {
    running += sorted[k];
    const double candidate =
        (running - total) / static_cast<double>(k + 1);
    if (k + 1 == sorted.size() || sorted[k + 1] <= candidate) {
      tau = candidate;
      break;
    }
  }
  for (double& v : values) {
    v = std::max(0.0, v - tau);
  }
}

double LinearConstraint::Evaluate(const Vector& x) const {
  double acc = constant;
  for (const auto& [index, coeff] : terms) {
    acc += coeff * x[index];
  }
  return acc;
}

double LinearConstraint::Violation(const Vector& x) const {
  const double value = Evaluate(x);
  switch (kind) {
    case Kind::kGeZero:
      return std::max(0.0, -value);
    case Kind::kEqZero:
      return std::fabs(value);
  }
  return 0.0;
}

double ConstraintFunction::Violation(const Vector& x) const {
  const double value = Evaluate(x);
  switch (kind()) {
    case ConstraintKind::kGeZero:
      return std::max(0.0, -value);
    case ConstraintKind::kEqZero:
      return std::fabs(value);
  }
  return 0.0;
}

}  // namespace dvs::opt
