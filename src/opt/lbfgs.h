// Limited-memory BFGS for smooth unconstrained minimisation.
//
// Not on the ACS critical path (the constrained stack uses SPG + ALM) but
// part of the solver library: it settles smooth subproblems (e.g. the full
// paper NLP's voltage variables in tests) and provides an independent
// optimiser for cross-checking SPG results.
#ifndef ACS_OPT_LBFGS_H
#define ACS_OPT_LBFGS_H

#include <cstddef>

#include "opt/problem.h"
#include "opt/spg.h"
#include "opt/vec.h"

namespace dvs::opt {

struct LbfgsWorkspace;  // opt/workspace.h

struct LbfgsOptions {
  std::size_t max_iterations = 500;
  double tolerance = 1e-8;   // sup-norm of the gradient
  std::size_t memory = 8;    // stored (s, y) pairs
  double armijo_c = 1e-4;
  double backtrack = 0.5;
  std::size_t max_backtracks = 60;
};

struct LbfgsReport {
  SolveStatus status = SolveStatus::kMaxIterations;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
  double final_value = 0.0;
  double gradient_norm = 0.0;
};

/// `workspace` (optional) supplies reusable scratch buffers — results are
/// bit-identical with or without it (see opt/workspace.h).
LbfgsReport MinimizeLbfgs(const Objective& objective, Vector& x,
                          const LbfgsOptions& options = {},
                          LbfgsWorkspace* workspace = nullptr);

}  // namespace dvs::opt

#endif  // ACS_OPT_LBFGS_H
