#!/usr/bin/env bash
# Line-coverage gate for the planning-critical layers (src/core +
# src/workload): builds with gcov instrumentation, runs the test suite, and
# prints/fails on the aggregate line coverage.
#
# Usage:
#   tools/coverage.sh [build-dir] [min-percent]
#
# Defaults: build-dir "build-cov", min-percent 0 (report only).  CI calls
# it with the checked-in floor — see .github/workflows/ci.yml — and an
# `html` third argument to additionally emit a gcovr HTML report when
# gcovr is installed (the numeric gate itself needs only gcov + awk, so the
# script runs identically on bare dev boxes).
set -euo pipefail

build_dir="${1:-build-cov}"
min_percent="${2:-0}"
html="${3:-}"

cmake -B "${build_dir}" -S . -DACS_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug \
  > /dev/null
cmake --build "${build_dir}" -j "$(nproc)" > /dev/null
(cd "${build_dir}" && ctest --output-on-failure -j "$(nproc)" > /dev/null)

# Aggregate executed/total lines over src/core + src/workload from gcov
# intermediate JSON-free stdout: "File .../src/core/foo.cc" followed by
# "Lines executed:NN.NN% of MMM".
percent=$(
  cd "${build_dir}" &&
  find . -name '*.gcno' -path '*CMakeFiles/acs.dir*' |
  xargs gcov -n 2>/dev/null |
  awk '
    /^File / {
      file = $0
      keep = (file ~ /src\/core\// || file ~ /src\/workload\//)
    }
    keep && /^Lines executed:/ {
      split($0, a, ":"); split(a[2], b, "% of ")
      covered += b[1] / 100.0 * b[2]; total += b[2]; keep = 0
    }
    END {
      if (total == 0) { print "0.0"; exit }
      printf "%.2f", 100.0 * covered / total
    }'
)
echo "line coverage (src/core + src/workload): ${percent}%"

if [[ -n "${html}" ]] && command -v gcovr > /dev/null; then
  gcovr --root . --object-directory "${build_dir}" \
    --filter 'src/core/' --filter 'src/workload/' \
    --html-details "${build_dir}/coverage.html" > /dev/null
  echo "html report: ${build_dir}/coverage.html"
fi

awk -v p="${percent}" -v m="${min_percent}" 'BEGIN { exit !(p >= m) }' || {
  echo "error: coverage ${percent}% is below the ${min_percent}% floor" >&2
  exit 1
}
