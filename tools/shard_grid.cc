// Sharded smoke-grid runner: one process = one shard of a fixed grid.
//
// Runs the repository's smoke grid (the exact grid behind
// tests/data/golden_smoke_grid.csv, or the planning grid behind
// golden_planning_grid.csv with --planning) restricted to shard
// `--shard` of `--shard-count`, streaming the shard's rows to `--csv`.
// Merging every shard's CSV with tools/merge_results reproduces the
// unsharded serial run byte-for-byte — the end-to-end contract that
// tests/runner_shard_test.cc pins in-process.
//
//   shard_grid --shard=0 --shard-count=2 --csv=shard0.csv
//   shard_grid --shard=1 --shard-count=2 --csv=shard1.csv
//   merge_results --output=merged.csv shard0.csv shard1.csv
//
// Persistent solve cache (core/solve_store.h): --cache-dir points the shard
// at a cache directory — Prepare() misses pre-seed from it and the shard's
// solves are written back before the manifest, so re-running a shard (or a
// later, wider grid) only solves new cells.  A writable cache dir admits
// ONE writer: two concurrent shards pointed at the same --cache-dir
// hard-error on the directory's LOCK file.  The concurrent-shard flow is
// --cache-read-only: warm one shared directory first (e.g. a --shard-count=1
// pass, or a previous run), then launch the fleet with
// --cache-dir=<shared> --cache-read-only — every shard pre-seeds from the
// shared entries without locking or writing, and per-shard *writable* dirs
// stay possible by giving each shard its own --cache-dir.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/solve_store.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runner/csv_sink.h"
#include "runner/experiment_grid.h"
#include "runner/run_grid.h"
#include "util/cli.h"
#include "util/error.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace {

using namespace dvs;

model::TaskSet TinyFixedSet(const model::DvsModel& dvs) {
  model::Task a;
  a.name = "a";
  a.period = 10;
  a.wcec = 8.0;
  a.acec = 5.0;
  a.bcec = 2.0;
  model::Task b;
  b.name = "b";
  b.period = 20;
  b.wcec = 12.0;
  b.acec = 8.0;
  b.bcec = 4.0;
  return workload::ScaleToUtilization({a, b}, dvs, 0.6);
}

/// The legacy smoke grid — must stay in lockstep with GoldenGrid in
/// tests/runner_golden_csv_test.cc so a merged sharded run can be compared
/// against tests/data/golden_smoke_grid.csv directly.
runner::ExperimentGrid SmokeGrid(const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  gen.bcec_wcec_ratio = 0.3;
  gen.max_sub_instances = 24;

  runner::ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {runner::RandomSource("random-2", gen, 2),
                  runner::FixedSource("tiny-fixed", TinyFixedSet(dvs))};
  grid.sigma_divisors = {6.0, 10.0};
  grid.workload_seeds = {0, 1};
  grid.methods = {"acs", "wcs", "static-vmax"};
  grid.hyper_periods = 10;
  grid.master_seed = 7;
  return grid;
}

/// The planning smoke grid — lockstep with GoldenPlanningGrid in
/// tests/runner_golden_csv_test.cc (golden_planning_grid.csv).
runner::ExperimentGrid PlanningGrid(const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 3;
  gen.bcec_wcec_ratio = 0.3;
  gen.max_sub_instances = 24;

  runner::ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {runner::RandomSource("random-3", gen, 1),
                  runner::FixedSource("tiny-fixed", TinyFixedSet(dvs))};
  grid.scenarios = {"iid-normal", "heavy-tail", "bimodal"};
  grid.methods = {"acs", "acs-scenario", "acs-quantile", "acs-mixture", "wcs"};
  grid.baseline = "acs";
  grid.planning.calibration_samples = 256;
  grid.planning.mixture_samples = 4;
  grid.hyper_periods = 10;
  grid.master_seed = 11;
  return grid;
}

int Run(int argc, const char* const* argv) {
  std::int64_t shard = 0;
  std::int64_t shard_count = 1;
  std::int64_t threads = 1;
  std::string csv;
  bool planning = false;
  bool solver_stats = false;
  std::string warm_start = "off";
  std::string trace_out;
  std::string manifest_out;
  std::string cache_dir;
  bool cache_read_only = false;

  util::ArgParser parser(
      "shard_grid",
      "Run one shard of the fixed smoke grid, streaming rows to a CSV that "
      "tools/merge_results reassembles into the unsharded file.");
  parser.AddInt("shard", &shard, "shard index in [0, shard-count)");
  parser.AddInt("shard-count", &shard_count, "total number of shards");
  parser.AddInt("threads", &threads,
                "worker threads for this shard (<= 0: hardware threads)");
  parser.AddString("csv", &csv, "output CSV path for this shard (required)");
  parser.AddFlag("planning", &planning,
                 "run the scenario-planning smoke grid (scenario column on) "
                 "instead of the legacy grid");
  parser.AddFlag("solver-stats", &solver_stats,
                 "append the opt-in solver iteration/evaluation CSV columns");
  parser.AddString("warm-start", &warm_start,
                   "sigma-axis warm-start policy: off | neighbor");
  parser.AddString("trace-out", &trace_out,
                   "write this shard's Chrome trace_event JSON here "
                   "(merge_results --merged-trace recombines shards)");
  parser.AddString("manifest-out", &manifest_out,
                   "write this shard's run manifest here (merge_results "
                   "--merged-manifest recombines shards)");
  parser.AddString("cache-dir", &cache_dir,
                   "persistent solve-cache directory: pre-seed solves from "
                   "it, write this shard's solves back (one writer per "
                   "directory — concurrent shards need --cache-read-only "
                   "or per-shard dirs)");
  parser.AddFlag("cache-read-only", &cache_read_only,
                 "open --cache-dir read-only: pre-seed without locking or "
                 "writing back (the shared-cache flow for concurrent "
                 "shards)");
  if (!parser.Parse(argc, argv)) {
    return EXIT_SUCCESS;
  }
  if (csv.empty()) {
    std::cerr << "shard_grid: --csv is required\n" << parser.Usage();
    return EXIT_FAILURE;
  }

  const model::LinearDvsModel cpu = workload::DefaultModel();
  runner::ExperimentGrid grid = planning ? PlanningGrid(cpu) : SmokeGrid(cpu);
  if (warm_start == "neighbor") {
    grid.warm_start = core::WarmStartPolicy::kNeighbor;
  } else if (warm_start != "off") {
    std::cerr << "shard_grid: unknown --warm-start \"" << warm_start
              << "\" (expected off | neighbor)\n";
    return EXIT_FAILURE;
  }

  // Telemetry: installed before RunGrid spawns workers, observation-only —
  // the CSV bytes are identical with or without these flags (the
  // golden-bytes tests pin this).
  std::unique_ptr<obs::MetricsRegistry> metrics;
  if (!manifest_out.empty()) {
    metrics = std::make_unique<obs::MetricsRegistry>();
    obs::InstallMetrics(metrics.get());
  }
  std::unique_ptr<obs::TraceRecorder> trace;
  if (!trace_out.empty()) {
    trace = std::make_unique<obs::TraceRecorder>();
    obs::TraceRecorder::Install(trace.get());
  }

  // The writable open throws on a held LOCK — the two-shards-one-cache-dir
  // hard error happens here, before any cell runs.
  std::unique_ptr<core::SolveStore> store;
  if (!cache_dir.empty()) {
    store = std::make_unique<core::SolveStore>(cache_dir, cache_read_only);
  }

  runner::CsvSink sink(csv, /*scenario_column=*/planning,
                       /*solver_stats_columns=*/solver_stats);
  runner::RunOptions options;
  options.threads = static_cast<int>(threads);
  options.sink = &sink;
  options.shard_index = static_cast<std::size_t>(shard);
  options.shard_count = static_cast<std::size_t>(shard_count);
  options.solve_store = store.get();
  const auto start = std::chrono::steady_clock::now();
  const runner::GridResult result = runner::RunGrid(grid, options);
  const std::chrono::duration<double, std::milli> wall =
      std::chrono::steady_clock::now() - start;

  // Before the manifest, so persist.write_backs lands in its metrics.
  if (store != nullptr && !store->read_only()) {
    const std::size_t written = store->WriteBack();
    std::cout << "solve cache: " << written << " entr"
              << (written == 1 ? "y" : "ies") << " written back to "
              << cache_dir << "\n";
  }

  if (trace != nullptr) {
    trace->WriteChromeTrace(trace_out,
                            static_cast<std::uint32_t>(shard));
    std::cout << "trace written to " << trace_out << " ("
              << trace->event_count() << " spans)\n";
  }
  if (metrics != nullptr) {
    obs::RunManifest manifest;
    manifest.tool = planning ? "shard_grid --planning" : "shard_grid";
    manifest.master_seed = grid.master_seed;
    manifest.threads = options.threads;
    manifest.shard_index = static_cast<std::size_t>(shard);
    manifest.shard_count = static_cast<std::size_t>(shard_count);
    manifest.wall_ms = wall.count();
    manifest.config = {
        {"grid", planning ? "planning" : "smoke"},
        {"warm_start", warm_start},
        {"solver_stats", solver_stats ? "true" : "false"},
        {"cache_dir", cache_dir},
        {"cache_read_only", cache_read_only ? "true" : "false"},
    };
    obs::WriteManifest(manifest_out, manifest, metrics.get());
    obs::InstallMetrics(nullptr);
    std::cout << "manifest written to " << manifest_out << "\n";
  }

  std::cout << "shard " << shard << "/" << shard_count << ": " << sink.rows()
            << " rows -> " << csv << " (" << result.failed_cells
            << " failed cells)\n";
  return result.failed_cells == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const dvs::util::Error& error) {
    std::cerr << "shard_grid: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
}
