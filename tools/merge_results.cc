// Merge shard CSVs (tools/shard_grid output) into the unsharded file.
//
//   merge_results --output=merged.csv shard0.csv shard1.csv ...
//
// Headers must agree byte-for-byte, every cell index must appear in
// exactly one input, and the union must be contiguous from 0 — overlaps
// and gaps are hard errors (runner/shard.h).  The merged file is
// byte-identical to what one serial unsharded run would have written.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "runner/shard.h"
#include "util/error.h"

namespace {

int Run(int argc, char** argv) {
  std::string output;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--output=", 0) == 0) {
      output = arg.substr(9);
    } else if (arg == "--output" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: merge_results --output=<merged.csv> "
                   "<shard0.csv> [shard1.csv ...]\n";
      return EXIT_SUCCESS;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "merge_results: unknown flag " << arg << "\n";
      return EXIT_FAILURE;
    } else {
      inputs.push_back(arg);
    }
  }
  if (output.empty() || inputs.empty()) {
    std::cerr << "usage: merge_results --output=<merged.csv> "
                 "<shard0.csv> [shard1.csv ...]\n";
    return EXIT_FAILURE;
  }

  const std::size_t rows = dvs::runner::MergeShardCsvFiles(inputs, output);
  std::cout << "merged " << inputs.size() << " shard files, " << rows
            << " rows -> " << output << "\n";
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const dvs::util::Error& error) {
    std::cerr << "merge_results: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
}
