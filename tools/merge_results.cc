// Merge shard artifacts (tools/shard_grid output) into unsharded files.
//
//   merge_results --output=merged.csv shard0.csv shard1.csv ...
//   merge_results --merged-manifest=run.json --manifests=s0.json,s1.json
//   merge_results --merged-trace=run.trace.json --traces=s0.json,s1.json
//
// CSV: headers must agree byte-for-byte, every cell index must appear in
// exactly one input, and the union must be contiguous from 0 — overlaps
// and gaps are hard errors (runner/shard.h).  The merged file is
// byte-identical to what one serial unsharded run would have written.
//
// Manifests: per-shard run manifests recombine into the document an
// unsharded run would write — identical tool/build/config/master_seed
// required, shard coverage must be exactly 0..shard_count-1 (a repeated
// shard is a double-merge error, a gap a missing-shard error), wall times
// and counters sum (obs/manifest.h).
//
// Traces: per-shard Chrome trace_event JSONs concatenate with each shard's
// events re-homed to its own pid, so the merged file views in Perfetto as
// one process group per shard (obs/trace.h).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/manifest.h"
#include "obs/trace.h"
#include "runner/shard.h"
#include "util/error.h"
#include "util/strings.h"

namespace {

using namespace dvs;

constexpr char kUsage[] =
    "usage: merge_results [--output=<merged.csv> <shard0.csv> ...]\n"
    "                     [--manifests=<s0.json,s1.json,...> "
    "--merged-manifest=<run.json>]\n"
    "                     [--traces=<s0.json,s1.json,...> "
    "--merged-trace=<run.trace.json>]\n";

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw util::Error("cannot open input file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    throw util::Error("cannot open output file: " + path);
  }
  out << text << '\n';
}

std::vector<std::string> SplitPaths(const std::string& list) {
  std::vector<std::string> paths;
  for (std::string& part : util::Split(list, ',')) {
    if (!part.empty()) {
      paths.push_back(std::move(part));
    }
  }
  return paths;
}

int Run(int argc, char** argv) {
  std::string output;
  std::string manifests;
  std::string merged_manifest;
  std::string traces;
  std::string merged_trace;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--output=", 0) == 0) {
      output = arg.substr(9);
    } else if (arg == "--output" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg.rfind("--manifests=", 0) == 0) {
      manifests = arg.substr(12);
    } else if (arg.rfind("--merged-manifest=", 0) == 0) {
      merged_manifest = arg.substr(18);
    } else if (arg.rfind("--traces=", 0) == 0) {
      traces = arg.substr(9);
    } else if (arg.rfind("--merged-trace=", 0) == 0) {
      merged_trace = arg.substr(15);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return EXIT_SUCCESS;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "merge_results: unknown flag " << arg << "\n";
      return EXIT_FAILURE;
    } else {
      inputs.push_back(arg);
    }
  }
  if (manifests.empty() != merged_manifest.empty()) {
    std::cerr << "merge_results: --manifests and --merged-manifest go "
                 "together\n" << kUsage;
    return EXIT_FAILURE;
  }
  if (traces.empty() != merged_trace.empty()) {
    std::cerr << "merge_results: --traces and --merged-trace go together\n"
              << kUsage;
    return EXIT_FAILURE;
  }
  const bool merge_csv = !output.empty() || !inputs.empty();
  if (merge_csv && (output.empty() || inputs.empty())) {
    std::cerr << kUsage;
    return EXIT_FAILURE;
  }
  if (!merge_csv && manifests.empty() && traces.empty()) {
    std::cerr << kUsage;
    return EXIT_FAILURE;
  }

  if (merge_csv) {
    const std::size_t rows = runner::MergeShardCsvFiles(inputs, output);
    std::cout << "merged " << inputs.size() << " shard files, " << rows
              << " rows -> " << output << "\n";
  }

  if (!manifests.empty()) {
    const std::vector<std::string> paths = SplitPaths(manifests);
    std::vector<std::string> texts;
    texts.reserve(paths.size());
    for (const std::string& path : paths) {
      texts.push_back(ReadFile(path));
    }
    WriteFile(merged_manifest, obs::MergeManifests(texts));
    std::cout << "merged " << paths.size() << " manifests -> "
              << merged_manifest << "\n";
  }

  if (!traces.empty()) {
    const std::vector<std::string> paths = SplitPaths(traces);
    std::vector<std::string> texts;
    std::vector<std::uint32_t> pids;
    texts.reserve(paths.size());
    for (const std::string& path : paths) {
      pids.push_back(static_cast<std::uint32_t>(texts.size()));
      texts.push_back(ReadFile(path));
    }
    WriteFile(merged_trace, obs::MergeChromeTraces(texts, pids));
    std::cout << "merged " << paths.size() << " traces -> " << merged_trace
              << "\n";
  }
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const dvs::util::Error& error) {
    std::cerr << "merge_results: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
}
