// Solve-cache inspector: lists a --cache-dir's entries without touching
// them.
//
//   cache_info --dir=grid_cache
//
// Opens the directory read-only (no writer LOCK), walks every *.acsc entry
// file and prints one row per entry: the content key, the file size, the
// stored task set's shape, which whole-set solves are present (wcs / acs /
// vmax-asap) and how many planned solves and scenario calibrations the
// entry carries.  Files that fail structural validation — bad magic,
// truncation, checksum mismatch, a foreign schema version — or whose
// embedded key disagrees with the file name (a renamed or foreign cache
// file) are reported with the reason instead of aborting, exactly the
// classes SolveStore::Load rejects at run time.
//
// Exit status is 0 when every entry parsed cleanly, 1 when any entry was
// rejected (so CI can smoke a cache dir), 2 on usage errors.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/eval_workspace.h"
#include "core/solve_store.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/table.h"

namespace {

using namespace dvs;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ACS_REQUIRE(in.good(), "cannot open entry file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string KeyHex(std::uint64_t key) {
  std::ostringstream out;
  out << std::hex << key;
  std::string digits = out.str();
  return std::string(16 - digits.size(), '0') + digits;
}

const char* ModelName(std::uint8_t tag) {
  switch (tag) {
    case 1:
      return "linear";
    case 2:
      return "alpha";
    case 3:
      return "discrete";
    default:
      return "unknown";
  }
}

int Run(int argc, const char* const* argv) {
  std::string dir;
  std::int64_t budget =
      static_cast<std::int64_t>(core::EvalWorkspace::kDefaultPreparedBudgetBytes);

  util::ArgParser parser("cache_info",
                         "List the entries of a persistent solve-cache "
                         "directory (core/solve_store.h) without locking or "
                         "modifying it.");
  parser.AddString("dir", &dir, "cache directory to inspect (required)");
  parser.AddInt("budget", &budget,
                "prepared-cache byte budget to flag oversized entries "
                "against (default: the workspace default)");
  if (!parser.Parse(argc, argv)) {
    return EXIT_SUCCESS;
  }
  if (dir.empty()) {
    std::cerr << "cache_info: --dir is required\n" << parser.Usage();
    return 2;
  }

  const core::SolveStore store(dir, /*read_only=*/true);
  const std::vector<std::uint64_t> keys = store.DiskKeys();
  std::cout << "solve cache " << dir << ": " << keys.size() << " entr"
            << (keys.size() == 1 ? "y" : "ies") << " (schema version "
            << core::kSolveStoreSchemaVersion << ")\n\n";

  util::TextTable table({"key", "bytes", "model", "tasks", "wcs", "acs",
                         "vmax", "planned", "calibrations", "budget"});
  std::size_t rejected = 0;
  std::size_t oversized = 0;
  for (std::uint64_t key : keys) {
    const std::string path = store.EntryPath(key);
    std::string reason;
    try {
      const std::string bytes = ReadFileBytes(path);
      const core::StoredCell cell = core::DeserializeStoredCell(bytes);
      if (cell.EntryKey() != key) {
        reason = "foreign fingerprint (file name does not match content)";
      } else {
        // Serialized size is the inspector's proxy for resident footprint
        // (ApproxBytes needs the restored expansion).  An entry alone above
        // the budget is admitted charge-exempt by EvalWorkspace and can
        // never persist in the prepared cache alongside others.
        const bool over =
            bytes.size() > static_cast<std::size_t>(std::max<std::int64_t>(
                               0, budget));
        if (over) {
          ++oversized;
        }
        table.AddRow({KeyHex(key), std::to_string(bytes.size()),
                      ModelName(cell.model.tag),
                      std::to_string(cell.set.size()),
                      cell.wcs.has_value() ? "yes" : "-",
                      cell.acs.has_value() ? "yes" : "-",
                      cell.vmax_asap.has_value() ? "yes" : "-",
                      std::to_string(cell.planned.size()),
                      std::to_string(cell.calibrations.size()),
                      over ? "OVER" : "-"});
        continue;
      }
    } catch (const util::Error& error) {
      reason = error.what();
    }
    ++rejected;
    table.AddRow({KeyHex(key), "REJECTED: " + reason, "", "", "", "", "", "",
                  "", ""});
  }
  std::cout << table.Render();
  if (oversized > 0) {
    std::cout << "\n" << oversized << " entr" << (oversized == 1 ? "y" : "ies")
              << " exceed" << (oversized == 1 ? "s" : "")
              << " the prepared-cache byte budget (" << budget
              << " bytes) — resident charge-exempt, never cached alongside "
                 "other entries\n";
  }
  if (rejected > 0) {
    std::cout << "\n" << rejected << " entr" << (rejected == 1 ? "y" : "ies")
              << " rejected — a run pointed at this directory re-solves "
                 "them\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const dvs::util::Error& error) {
    std::cerr << "cache_info: " << error.what() << "\n";
    return 2;
  }
}
