#include "stats/distributions.h"

#include <gtest/gtest.h>

#include "stats/summary.h"
#include "util/error.h"

namespace dvs::stats {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(NormalCdf(-1.0), 1.0 - 0.8413447460685429, 1e-10);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-10);
}

TEST(NormalPdf, KnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(NormalPdf(-1.0), NormalPdf(1.0), 1e-15);
}

TEST(TruncatedNormal, SamplesStayInWindow) {
  TruncatedNormal dist(10.0, 3.0, 4.0, 16.0);
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const double x = dist.Sample(rng);
    EXPECT_GE(x, 4.0);
    EXPECT_LE(x, 16.0);
  }
}

TEST(TruncatedNormal, SymmetricWindowKeepsMean) {
  // Symmetric truncation around the mean leaves the mean unchanged.
  TruncatedNormal dist(10.0, 3.0, 4.0, 16.0);
  EXPECT_NEAR(dist.Mean(), 10.0, 1e-12);
}

TEST(TruncatedNormal, AsymmetricWindowShiftsMean) {
  TruncatedNormal dist(10.0, 3.0, 9.0, 20.0);
  EXPECT_GT(dist.Mean(), 10.0);  // mass cut below -> mean moves up
}

TEST(TruncatedNormal, EmpiricalMeanMatchesAnalytic) {
  TruncatedNormal dist(5.0, 2.0, 1.0, 7.0);  // asymmetric window
  Rng rng(17);
  OnlineStats acc;
  for (int i = 0; i < 200000; ++i) {
    acc.Add(dist.Sample(rng));
  }
  EXPECT_NEAR(acc.mean(), dist.Mean(), 0.02);
  EXPECT_NEAR(acc.stddev() * acc.stddev(), dist.Variance(), 0.05);
}

TEST(TruncatedNormal, PaperParameterisation) {
  // ratio 0.1: BCEC = 0.1 WCEC, ACEC = 0.55 WCEC, sigma = span/6.
  const double wcec = 1000.0;
  const double bcec = 100.0;
  const double acec = 550.0;
  TruncatedNormal dist(acec, (wcec - bcec) / 6.0, bcec, wcec);
  EXPECT_NEAR(dist.Mean(), acec, 1e-9);  // 3-sigma window is symmetric
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = dist.Sample(rng);
    EXPECT_GE(x, bcec);
    EXPECT_LE(x, wcec);
  }
}

TEST(TruncatedNormal, VarianceShrinksUnderTruncation) {
  TruncatedNormal dist(0.0, 1.0, -1.0, 1.0);
  EXPECT_LT(dist.Variance(), 1.0);
  EXPECT_GT(dist.Variance(), 0.0);
}

TEST(TruncatedNormal, RejectsBadWindows) {
  EXPECT_THROW(TruncatedNormal(0.0, 1.0, 2.0, 1.0),  // lo > hi
               util::InvalidArgumentError);
  EXPECT_THROW(TruncatedNormal(0.0, -1.0, 0.0, 1.0),  // negative sigma
               util::InvalidArgumentError);
  // Window 40 sigma away from the mean carries no mass.
  EXPECT_THROW(TruncatedNormal(0.0, 1.0, 40.0, 41.0),
               util::InvalidArgumentError);
}

// The degenerate edges callers used to have to avoid: a collapsed window
// (BCEC == WCEC) and a zero sigma both collapse to a point mass instead of
// throwing.
TEST(TruncatedNormal, CollapsedWindowIsPointMass) {
  TruncatedNormal dist(0.0, 1.0, 5.0, 5.0);
  EXPECT_TRUE(dist.IsDegenerate());
  Rng rng(1);
  EXPECT_DOUBLE_EQ(dist.Sample(rng), 5.0);
  EXPECT_DOUBLE_EQ(dist.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(dist.Variance(), 0.0);
}

TEST(TruncatedNormal, ZeroSigmaClampsMeanIntoWindow) {
  TruncatedNormal inside(3.0, 0.0, 1.0, 5.0);
  EXPECT_TRUE(inside.IsDegenerate());
  Rng rng(1);
  EXPECT_DOUBLE_EQ(inside.Sample(rng), 3.0);
  EXPECT_DOUBLE_EQ(inside.Variance(), 0.0);

  // A parent mean outside the window clamps to the nearest edge: the limit
  // of the truncated law as sigma -> 0.
  TruncatedNormal below(-2.0, 0.0, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(below.Sample(rng), 1.0);
  TruncatedNormal above(9.0, 0.0, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(above.Sample(rng), 5.0);
}

TEST(TruncatedNormal, NonDegenerateWindowStaysStochastic) {
  TruncatedNormal dist(10.0, 3.0, 4.0, 16.0);
  EXPECT_FALSE(dist.IsDegenerate());
}

TEST(TruncatedPareto, SamplesStayInWindow) {
  TruncatedPareto dist(1.1, 100.0, 1000.0);
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const double x = dist.Sample(rng);
    EXPECT_GE(x, 100.0);
    EXPECT_LE(x, 1000.0);
  }
}

TEST(TruncatedPareto, ToleratesZeroLowerBound) {
  // BCEC = 0 tasks: the classical Pareto support (x >= x_m > 0) would
  // reject lo = 0; the shifted law must not.
  TruncatedPareto dist(1.5, 0.0, 10.0);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double x = dist.Sample(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 10.0);
  }
}

TEST(TruncatedPareto, EmpiricalMeanMatchesAnalytic) {
  TruncatedPareto dist(1.1, 2.0, 50.0);
  Rng rng(11);
  OnlineStats acc;
  for (int i = 0; i < 200000; ++i) {
    acc.Add(dist.Sample(rng));
  }
  EXPECT_NEAR(acc.mean(), dist.Mean(), 0.1);
  // Heavy tail: the mass concentrates near lo, so the mean sits well below
  // the window midpoint.
  EXPECT_LT(dist.Mean(), 0.5 * (2.0 + 50.0));
}

TEST(TruncatedPareto, UnitShapeUsesLogMean) {
  TruncatedPareto dist(1.0, 1.0, 21.0);
  Rng rng(13);
  OnlineStats acc;
  for (int i = 0; i < 200000; ++i) {
    acc.Add(dist.Sample(rng));
  }
  EXPECT_NEAR(acc.mean(), dist.Mean(), 0.1);
}

TEST(TruncatedPareto, CollapsedWindowIsPointMass) {
  TruncatedPareto dist(1.1, 5.0, 5.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(dist.Sample(rng), 5.0);
  EXPECT_DOUBLE_EQ(dist.Mean(), 5.0);
}

TEST(TruncatedPareto, RejectsBadParameters) {
  EXPECT_THROW(TruncatedPareto(0.0, 1.0, 2.0), util::InvalidArgumentError);
  EXPECT_THROW(TruncatedPareto(1.0, 3.0, 2.0), util::InvalidArgumentError);
}

TEST(PointMass, AlwaysSameValue) {
  PointMass dist(7.5);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(dist.Sample(rng), 7.5);
  EXPECT_DOUBLE_EQ(dist.Mean(), 7.5);
}

}  // namespace
}  // namespace dvs::stats
