// Tests for the optimisation stack: SPG, L-BFGS, augmented Lagrangian and
// the finite-difference reference.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "opt/augmented_lagrangian.h"
#include "opt/finite_diff.h"
#include "opt/lbfgs.h"
#include "opt/problem.h"
#include "opt/spg.h"

namespace dvs::opt {
namespace {

/// f(x) = sum (x_i - c_i)^2 — convex quadratic with known minimiser.
class Quadratic final : public Objective {
 public:
  explicit Quadratic(Vector center) : center_(std::move(center)) {}
  std::size_t dim() const override { return center_.size(); }
  double Value(const Vector& x) const override {
    double f = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      f += (x[i] - center_[i]) * (x[i] - center_[i]);
    }
    return f;
  }
  void Gradient(const Vector& x, Vector& grad) const override {
    grad.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      grad[i] = 2.0 * (x[i] - center_[i]);
    }
  }

 private:
  Vector center_;
};

/// The 2-D Rosenbrock valley — the classic curvature stress test.
class Rosenbrock final : public Objective {
 public:
  std::size_t dim() const override { return 2; }
  double Value(const Vector& x) const override {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  }
  void Gradient(const Vector& x, Vector& grad) const override {
    grad.resize(2);
    const double b = x[1] - x[0] * x[0];
    grad[0] = -2.0 * (1.0 - x[0]) - 400.0 * x[0] * b;
    grad[1] = 200.0 * b;
  }
};

TEST(FiniteDiff, MatchesAnalyticGradient) {
  const Rosenbrock f;
  const Vector x{-1.2, 1.0};
  EXPECT_LT(GradientCheck(f, x), 1e-6);
}

TEST(FiniteDiff, FunctionOverload) {
  const auto f = [](const Vector& x) { return x[0] * x[0] * x[1]; };
  const Vector g = FiniteDifferenceGradient(f, {2.0, 3.0});
  EXPECT_NEAR(g[0], 12.0, 1e-5);
  EXPECT_NEAR(g[1], 4.0, 1e-5);
}

TEST(Spg, UnconstrainedQuadratic) {
  const Quadratic f({1.0, -2.0, 3.0});
  const FreeSet space;
  Vector x{0.0, 0.0, 0.0};
  const SpgReport report = MinimizeSpg(f, space, x);
  EXPECT_EQ(report.status, SolveStatus::kConverged);
  EXPECT_NEAR(x[0], 1.0, 1e-6);
  EXPECT_NEAR(x[1], -2.0, 1e-6);
  EXPECT_NEAR(x[2], 3.0, 1e-6);
}

TEST(Spg, BoxConstrainedQuadratic) {
  // Minimiser (5, 5) clipped by the box [0,1]^2 -> (1, 1).
  const Quadratic f({5.0, 5.0});
  BoxSimplexSet box(2);
  box.SetBounds(0, 0.0, 1.0);
  box.SetBounds(1, 0.0, 1.0);
  Vector x{0.5, 0.5};
  const SpgReport report = MinimizeSpg(f, box, x);
  EXPECT_EQ(report.status, SolveStatus::kConverged);
  EXPECT_NEAR(x[0], 1.0, 1e-8);
  EXPECT_NEAR(x[1], 1.0, 1e-8);
}

TEST(Spg, SimplexConstrainedQuadratic) {
  // min ||x - (1, 0, 0)||^2 over the probability simplex -> (1, 0, 0).
  const Quadratic f({1.0, 0.0, 0.0});
  BoxSimplexSet set(3);
  set.AddSimplex({0, 1, 2}, 1.0);
  Vector x{1.0 / 3, 1.0 / 3, 1.0 / 3};
  MinimizeSpg(f, set, x);
  EXPECT_NEAR(x[0], 1.0, 1e-6);
  EXPECT_NEAR(x[1], 0.0, 1e-6);
  EXPECT_NEAR(x[2], 0.0, 1e-6);
}

TEST(Spg, RosenbrockConverges) {
  const Rosenbrock f;
  const FreeSet space;
  Vector x{-1.2, 1.0};
  SpgOptions options;
  options.max_iterations = 5000;
  options.tolerance = 1e-8;
  const SpgReport report = MinimizeSpg(f, space, x, options);
  EXPECT_NEAR(x[0], 1.0, 1e-3);
  EXPECT_NEAR(x[1], 1.0, 1e-3);
  EXPECT_LT(report.final_value, 1e-6);
}

TEST(Lbfgs, RosenbrockConverges) {
  const Rosenbrock f;
  Vector x{-1.2, 1.0};
  LbfgsOptions options;
  options.max_iterations = 5000;  // Armijo-only line search is cautious in
                                  // the banana valley
  options.tolerance = 1e-6;
  const LbfgsReport report = MinimizeLbfgs(f, x, options);
  EXPECT_EQ(report.status, SolveStatus::kConverged);
  EXPECT_NEAR(x[0], 1.0, 1e-4);
  EXPECT_NEAR(x[1], 1.0, 1e-4);
}

TEST(Lbfgs, QuadraticInFewIterations) {
  const Quadratic f({2.0, -1.0, 0.5, 4.0});
  Vector x(4, 0.0);
  const LbfgsReport report = MinimizeLbfgs(f, x);
  EXPECT_EQ(report.status, SolveStatus::kConverged);
  EXPECT_LT(report.iterations, 20u);
  EXPECT_NEAR(x[3], 4.0, 1e-6);
}

TEST(Alm, EqualityConstrainedQuadratic) {
  // min ||x||^2 s.t. x0 + x1 = 1 -> (0.5, 0.5).
  const Quadratic f({0.0, 0.0});
  const FreeSet space;
  LinearConstraint c;
  c.kind = ConstraintKind::kEqZero;
  c.terms = {{0, 1.0}, {1, 1.0}};
  c.constant = -1.0;
  Vector x{3.0, -1.0};
  const AlmReport report = MinimizeAlm(f, space, {c}, x);
  EXPECT_TRUE(report.feasible);
  EXPECT_NEAR(x[0], 0.5, 1e-5);
  EXPECT_NEAR(x[1], 0.5, 1e-5);
}

TEST(Alm, InequalityInactiveAtOptimum) {
  // min ||x - (0.2, 0.2)||^2 s.t. x0 + x1 <= 1: unconstrained optimum is
  // feasible, so ALM must return it untouched.
  const Quadratic f({0.2, 0.2});
  const FreeSet space;
  LinearConstraint c;
  c.kind = ConstraintKind::kGeZero;  // 1 - x0 - x1 >= 0
  c.terms = {{0, -1.0}, {1, -1.0}};
  c.constant = 1.0;
  Vector x{0.0, 0.0};
  const AlmReport report = MinimizeAlm(f, space, {c}, x);
  EXPECT_TRUE(report.feasible);
  EXPECT_NEAR(x[0], 0.2, 1e-5);
  EXPECT_NEAR(x[1], 0.2, 1e-5);
}

TEST(Alm, InequalityActiveAtOptimum) {
  // min ||x - (1, 1)||^2 s.t. x0 + x1 <= 1 -> (0.5, 0.5).
  const Quadratic f({1.0, 1.0});
  const FreeSet space;
  LinearConstraint c;
  c.kind = ConstraintKind::kGeZero;
  c.terms = {{0, -1.0}, {1, -1.0}};
  c.constant = 1.0;
  Vector x{0.0, 0.0};
  const AlmReport report = MinimizeAlm(f, space, {c}, x);
  EXPECT_TRUE(report.feasible);
  EXPECT_NEAR(x[0], 0.5, 1e-4);
  EXPECT_NEAR(x[1], 0.5, 1e-4);
}

TEST(Alm, CombinesBoxAndLinearConstraints) {
  // min ||x - (2, 2)||^2 s.t. x in [0,1]^2, x0 - x1 >= 0.5.
  // Optimum: x0 = 1 (box), then x1 <= 0.5, objective pulls x1 up -> 0.5.
  const Quadratic f({2.0, 2.0});
  BoxSimplexSet box(2);
  box.SetBounds(0, 0.0, 1.0);
  box.SetBounds(1, 0.0, 1.0);
  LinearConstraint c;
  c.kind = ConstraintKind::kGeZero;
  c.terms = {{0, 1.0}, {1, -1.0}};
  c.constant = -0.5;
  Vector x{0.0, 0.0};
  const AlmReport report = MinimizeAlm(f, box, {c}, x);
  EXPECT_TRUE(report.feasible);
  EXPECT_NEAR(x[0], 1.0, 1e-4);
  EXPECT_NEAR(x[1], 0.5, 1e-4);
}

TEST(Alm, ReportExportsMultipliersForActiveConstraints) {
  // Same active-inequality problem as above: the converged report must
  // carry one multiplier per constraint row, strictly positive for the
  // active row (KKT), so a chain neighbor can continue from it.
  const Quadratic f({1.0, 1.0});
  const FreeSet space;
  LinearConstraint c;
  c.kind = ConstraintKind::kGeZero;
  c.terms = {{0, -1.0}, {1, -1.0}};
  c.constant = 1.0;
  Vector x{0.0, 0.0};
  const AlmReport report = MinimizeAlm(f, space, {c}, x);
  ASSERT_TRUE(report.feasible);
  ASSERT_EQ(report.multipliers.size(), 1u);
  EXPECT_GT(report.multipliers[0], 0.0);
}

TEST(Alm, DualSeedPolishesInFewerOuterIterations) {
  // Cold-solve once, then re-solve the same problem seeded from the
  // converged primal AND dual.  The warm solve must land on the same
  // optimum while skipping most of the cold outer schedule (the dual seed
  // collapses the inner-tolerance ramp).
  const Quadratic f({1.0, 1.0});
  const FreeSet space;
  LinearConstraint c;
  c.kind = ConstraintKind::kGeZero;
  c.terms = {{0, -1.0}, {1, -1.0}};
  c.constant = 1.0;
  Vector cold_x{0.0, 0.0};
  const AlmReport cold = MinimizeAlm(f, space, {c}, cold_x);
  ASSERT_TRUE(cold.feasible);

  Vector warm_x = cold_x;
  AlmOptions options;
  options.dual_seed = &cold.multipliers;
  options.dual_penalty_seed = cold.final_penalty;
  const AlmReport warm = MinimizeAlm(f, space, {c}, warm_x, options);
  EXPECT_TRUE(warm.feasible);
  EXPECT_LT(warm.outer_iterations, cold.outer_iterations);
  EXPECT_LT(warm.total_inner_iterations, cold.total_inner_iterations);
  EXPECT_NEAR(warm_x[0], cold_x[0], 1e-4);
  EXPECT_NEAR(warm_x[1], cold_x[1], 1e-4);
}

TEST(Alm, DualSeedSizeMismatchFallsBackToColdPath) {
  // A seed whose size does not match the constraint system must be ignored
  // — the solve is then bit-identical to the unseeded cold path.
  const Quadratic f({1.0, 1.0});
  const FreeSet space;
  LinearConstraint c;
  c.kind = ConstraintKind::kGeZero;
  c.terms = {{0, -1.0}, {1, -1.0}};
  c.constant = 1.0;
  Vector cold_x{0.0, 0.0};
  const AlmReport cold = MinimizeAlm(f, space, {c}, cold_x);

  const std::vector<double> bad_seed(3, 1.0);  // system has 1 row
  AlmOptions options;
  options.dual_seed = &bad_seed;
  options.dual_penalty_seed = 99.0;
  Vector x{0.0, 0.0};
  const AlmReport report = MinimizeAlm(f, space, {c}, x, options);
  EXPECT_EQ(report.outer_iterations, cold.outer_iterations);
  EXPECT_EQ(report.total_inner_iterations, cold.total_inner_iterations);
  EXPECT_EQ(x[0], cold_x[0]);
  EXPECT_EQ(x[1], cold_x[1]);
}

TEST(Alm, NoConstraintsDelegatesToSpg) {
  const Quadratic f({1.0, 2.0});
  const FreeSet space;
  Vector x{0.0, 0.0};
  const AlmReport report =
      MinimizeAlm(f, space, std::vector<LinearConstraint>{}, x);
  EXPECT_TRUE(report.feasible);
  EXPECT_EQ(report.outer_iterations, 1u);
  EXPECT_NEAR(x[1], 2.0, 1e-6);
}

TEST(Alm, NonlinearConstraintFunction) {
  // min x0 + x1 s.t. x0 * x1 >= 1, x >= 0.1 -> x = (1, 1).
  class LinearSum final : public Objective {
   public:
    std::size_t dim() const override { return 2; }
    double Value(const Vector& x) const override { return x[0] + x[1]; }
    void Gradient(const Vector&, Vector& grad) const override {
      grad = {1.0, 1.0};
    }
  };
  class ProductConstraint final : public ConstraintFunction {
   public:
    ConstraintKind kind() const override { return ConstraintKind::kGeZero; }
    double Evaluate(const Vector& x) const override {
      return x[0] * x[1] - 1.0;
    }
    void AccumulateGradient(const Vector& x, double w,
                            Vector& grad) const override {
      grad[0] += w * x[1];
      grad[1] += w * x[0];
    }
  };
  const LinearSum f;
  BoxSimplexSet box(2);
  box.SetBounds(0, 0.1, kNoBound);
  box.SetBounds(1, 0.1, kNoBound);
  const ProductConstraint con;
  Vector x{3.0, 0.2};
  AlmOptions options;
  options.inner.max_iterations = 2000;
  const AlmReport report = MinimizeAlm(f, box, {&con}, x, options);
  EXPECT_TRUE(report.feasible);
  EXPECT_NEAR(x[0] * x[1], 1.0, 1e-3);
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-2);
}

/// Records every hook invocation (the obs-layer convergence recorder's
/// shape, minus the file sink).
class RecordingObserver final : public SolveObserver {
 public:
  void OnSpgIteration(const SpgIterationEvent& event) override {
    spg_events.push_back(event);
  }
  void OnAlmOuter(const AlmOuterEvent& event) override {
    alm_events.push_back(event);
  }

  std::vector<SpgIterationEvent> spg_events;
  std::vector<AlmOuterEvent> alm_events;
};

TEST(SolveObserverHooks, SpgReportsEveryAcceptedIteration) {
  const Rosenbrock f;
  const FreeSet space;
  RecordingObserver observer;
  SpgOptions options;
  options.max_iterations = 2000;
  options.observer = &observer;
  Vector x{-1.2, 1.0};
  const SpgReport report = MinimizeSpg(f, space, x, options);

  // One event per *accepted* step: the final iteration only detects
  // convergence at entry and accepts nothing, so a converged solve has
  // iterations - 1 events.
  ASSERT_EQ(report.status, SolveStatus::kConverged);
  ASSERT_EQ(observer.spg_events.size(), report.iterations - 1);
  EXPECT_TRUE(observer.alm_events.empty());
  for (std::size_t i = 0; i < observer.spg_events.size(); ++i) {
    EXPECT_EQ(observer.spg_events[i].iteration, i + 1);
  }
  // The last accepted step's objective is the value the solve returns.
  const SpgIterationEvent& last = observer.spg_events.back();
  EXPECT_DOUBLE_EQ(last.value, report.final_value);
  EXPECT_LE(last.evaluations, report.evaluations);
}

TEST(SolveObserverHooks, AlmReportsOuterCyclesAndInnerIterations) {
  const Quadratic f({1.0, 1.0});
  const FreeSet space;
  LinearConstraint c;
  c.kind = ConstraintKind::kGeZero;
  c.terms = {{0, -1.0}, {1, -1.0}};
  c.constant = 1.0;
  RecordingObserver observer;
  AlmOptions options;
  options.observer = &observer;
  Vector x{0.0, 0.0};
  const AlmReport report = MinimizeAlm(f, space, {c}, x, options);

  ASSERT_EQ(observer.alm_events.size(), report.outer_iterations);
  EXPECT_FALSE(observer.spg_events.empty()) << "inner solves must observe";
  for (std::size_t i = 0; i < observer.alm_events.size(); ++i) {
    EXPECT_EQ(observer.alm_events[i].outer, i + 1);
    EXPECT_GT(observer.alm_events[i].penalty, 0.0);
  }
  // Cumulative at hook time; the driver may evaluate once more after the
  // last outer cycle.
  EXPECT_LE(observer.alm_events.back().evaluations, report.evaluations);
  EXPECT_GT(observer.alm_events.back().evaluations, 0u);
}

TEST(SolveObserverHooks, ObservationDoesNotPerturbTheSolve) {
  // The observation-only contract at the solver level: bit-identical
  // iterates, reports and evaluation counts with and without an observer.
  const auto solve = [](SolveObserver* observer, Vector& x) {
    const Rosenbrock f;
    const FreeSet space;
    SpgOptions options;
    options.max_iterations = 2000;
    options.observer = observer;
    x = {-1.2, 1.0};
    return MinimizeSpg(f, space, x, options);
  };
  Vector bare_x;
  Vector observed_x;
  RecordingObserver observer;
  const SpgReport bare = solve(nullptr, bare_x);
  const SpgReport observed = solve(&observer, observed_x);

  EXPECT_EQ(bare_x, observed_x) << "observer changed the iterate path";
  EXPECT_EQ(bare.iterations, observed.iterations);
  EXPECT_EQ(bare.evaluations, observed.evaluations);
  EXPECT_EQ(bare.status, observed.status);
  EXPECT_DOUBLE_EQ(bare.final_value, observed.final_value);
  EXPECT_DOUBLE_EQ(bare.criterion, observed.criterion);

  // Same contract through the ALM driver.
  const auto alm_solve = [](SolveObserver* observer, Vector& x) {
    const Quadratic f({1.0, 1.0});
    const FreeSet space;
    LinearConstraint c;
    c.kind = ConstraintKind::kGeZero;
    c.terms = {{0, -1.0}, {1, -1.0}};
    c.constant = 1.0;
    AlmOptions options;
    options.observer = observer;
    x = {0.0, 0.0};
    return MinimizeAlm(f, space, {c}, x, options);
  };
  Vector alm_bare_x;
  Vector alm_observed_x;
  RecordingObserver alm_observer;
  const AlmReport alm_bare = alm_solve(nullptr, alm_bare_x);
  const AlmReport alm_observed = alm_solve(&alm_observer, alm_observed_x);
  EXPECT_EQ(alm_bare_x, alm_observed_x);
  EXPECT_EQ(alm_bare.outer_iterations, alm_observed.outer_iterations);
  EXPECT_EQ(alm_bare.evaluations, alm_observed.evaluations);
  EXPECT_DOUBLE_EQ(alm_bare.final_value, alm_observed.final_value);
}

TEST(SolveStatusName, AllNamed) {
  EXPECT_STREQ(SolveStatusName(SolveStatus::kConverged), "converged");
  EXPECT_STREQ(SolveStatusName(SolveStatus::kMaxIterations),
               "max-iterations");
  EXPECT_STREQ(SolveStatusName(SolveStatus::kLineSearchFailed),
               "line-search-failed");
}

}  // namespace
}  // namespace dvs::opt
