#include "mp/partitioner.h"

#include <gtest/gtest.h>

#include "core/method_registry.h"
#include "fps/expansion.h"
#include "mp/partition.h"
#include "sim/engine.h"
#include "sim/static_schedule.h"
#include "util/error.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::mp {
namespace {

model::TaskSet FleetSet(const model::DvsModel& dvs, double utilization,
                        int num_tasks, std::uint64_t seed) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = num_tasks;
  gen.bcec_wcec_ratio = 0.3;
  gen.utilization = utilization;
  gen.max_sub_instances = 120;
  stats::Rng rng(seed);
  return workload::GenerateRandomTaskSet(gen, dvs, rng);
}

TEST(PartitionerRegistry, BuiltinsAndUnknownName) {
  const PartitionerRegistry& registry = PartitionerRegistry::Builtin();
  EXPECT_TRUE(registry.Contains("ffd"));
  EXPECT_TRUE(registry.Contains("wfd"));
  EXPECT_TRUE(registry.Contains("energy-greedy"));
  EXPECT_EQ(registry.Names().size(), 3u);
  EXPECT_FALSE(registry.Description("ffd").empty());
  EXPECT_THROW(registry.Get("round-robin"), util::InvalidArgumentError);
}

TEST(PartitionerRegistry, RejectsDuplicatesAndEmptyNames) {
  PartitionerRegistry registry;
  RegisterBuiltinPartitioners(registry);
  EXPECT_THROW(registry.Register("ffd", "again", nullptr),
               util::InvalidArgumentError);
  EXPECT_THROW(registry.Register("", "anonymous", nullptr),
               util::InvalidArgumentError);
}

// The partitioners' core contract: every task placed exactly once and every
// core's subset exactly RM-schedulable at Vmax — checked here with the
// engine's own admission test, and below with the independent
// VerifyWorstCase oracle on the per-core schedules.
TEST(Partitioners, EveryCoreIsRmSchedulable) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const model::TaskSet set = FleetSet(cpu, 2.1, 9, seed);
    for (const std::string& name : PartitionerRegistry::Builtin().Names()) {
      const Partitioner& partitioner =
          PartitionerRegistry::Builtin().Get(name);
      const Partition partition = partitioner.Assign(set, cpu, 4, {});
      partition.Validate(set);
      EXPECT_EQ(partition.cores(), 4) << name;
      for (int c = 0; c < partition.cores(); ++c) {
        const auto& owned = partition.assignment[static_cast<std::size_t>(c)];
        if (owned.empty()) {
          continue;
        }
        EXPECT_LE(partition.CoreUtilization(set, cpu, c), 1.0 + 1e-9)
            << name << " core " << c;
        const model::TaskSet subset = SubTaskSet(set, owned);
        const fps::FullyPreemptiveSchedule expansion(subset);
        EXPECT_TRUE(sim::IsRmSchedulable(expansion, cpu))
            << name << " core " << c << ": " << partition.Describe(set);
      }
    }
  }
}

// Property: the per-core offline schedules (the WCS solve and the ACS solve
// built on each partition's subset) pass the independent worst-case audit.
TEST(Partitioners, PerCoreSchedulesPassVerifyWorstCase) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = FleetSet(cpu, 1.4, 6, 7);
  const core::SchedulerOptions scheduler;
  for (const std::string& name : PartitionerRegistry::Builtin().Names()) {
    const Partition partition =
        PartitionerRegistry::Builtin().Get(name).Assign(set, cpu, 2, {});
    for (int c = 0; c < partition.cores(); ++c) {
      const auto& owned = partition.assignment[static_cast<std::size_t>(c)];
      if (owned.empty()) {
        continue;
      }
      const model::TaskSet subset = SubTaskSet(set, owned);
      const fps::FullyPreemptiveSchedule fps(subset);
      core::MethodContext context(fps, cpu, scheduler);
      const sim::FeasibilityReport wcs =
          sim::VerifyWorstCase(fps, context.Wcs().schedule, cpu);
      EXPECT_TRUE(wcs.feasible) << name << " core " << c << ": " << wcs.detail;
      const sim::FeasibilityReport acs =
          sim::VerifyWorstCase(fps, context.Acs().schedule, cpu);
      EXPECT_TRUE(acs.feasible) << name << " core " << c << ": " << acs.detail;
    }
  }
}

TEST(Partitioners, ThrowWhenDemandExceedsFleet) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = FleetSet(cpu, 1.4, 6, 11);
  for (const std::string& name : PartitionerRegistry::Builtin().Names()) {
    EXPECT_THROW(
        PartitionerRegistry::Builtin().Get(name).Assign(set, cpu, 1, {}),
        util::InfeasibleError)
        << name;
  }
}

TEST(Partitioners, WfdBalancesAndFfdPacks) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  // Four equal tasks, 0.2 utilisation each: FFD packs all four onto core 0;
  // WFD hands each to the emptiest core.
  model::Task t;
  t.name = "t";
  t.period = 10;
  t.wcec = 4.0;
  workload::ApplyBcecRatio(t, 0.5);
  const model::TaskSet set =
      workload::ScaleToUtilization({t, t, t, t}, cpu, 0.8);
  const Partition ffd =
      PartitionerRegistry::Builtin().Get("ffd").Assign(set, cpu, 4, {});
  EXPECT_EQ(ffd.used_cores(), 1);
  const Partition wfd =
      PartitionerRegistry::Builtin().Get("wfd").Assign(set, cpu, 4, {});
  EXPECT_EQ(wfd.used_cores(), 4);
}

TEST(Partitioners, EnergyGreedyWeighsIdleFloorAgainstConvexity) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  model::Task t;
  t.name = "t";
  t.period = 10;
  t.wcec = 4.0;
  workload::ApplyBcecRatio(t, 0.5);
  const model::TaskSet set =
      workload::ScaleToUtilization({t, t, t, t}, cpu, 0.8);
  const Partitioner& greedy =
      PartitionerRegistry::Builtin().Get("energy-greedy");
  // Convex dynamic energy with no idle floor: spreading wins.
  const Partition spread = greedy.Assign(set, cpu, 4, {});
  EXPECT_EQ(spread.used_cores(), 4);
  // A dominant idle floor makes powering extra cores the expensive move.
  const Partition packed =
      greedy.Assign(set, cpu, 4, model::IdlePower{1e9});
  EXPECT_EQ(packed.used_cores(), 1);
}

TEST(CoreEnergyRateFn, ConvexAndAnchoredAtZero) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  EXPECT_EQ(CoreEnergyRate(cpu, 0.0), 0.0);
  double previous_rate = 0.0;
  double previous_marginal = 0.0;
  for (double u = 0.2; u <= 1.0 + 1e-9; u += 0.2) {
    const double rate = CoreEnergyRate(cpu, u);
    EXPECT_GT(rate, previous_rate) << "rate must increase at u=" << u;
    const double marginal = rate - previous_rate;
    EXPECT_GE(marginal, previous_marginal - 1e-9)
        << "marginal must not shrink at u=" << u;
    previous_rate = rate;
    previous_marginal = marginal;
  }
}

TEST(SubTaskSetFn, PreservesOrderAndRejectsEmpty) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = FleetSet(cpu, 0.7, 4, 3);
  const model::TaskSet subset = SubTaskSet(set, {2, 0});
  ASSERT_EQ(subset.size(), 2u);
  EXPECT_EQ(subset.task(0).name, set.task(0).name);
  EXPECT_EQ(subset.task(1).name, set.task(2).name);
  EXPECT_THROW(SubTaskSet(set, {}), util::InvalidArgumentError);
  EXPECT_THROW(SubTaskSet(set, {99}), util::InvalidArgumentError);
}

}  // namespace
}  // namespace dvs::mp
