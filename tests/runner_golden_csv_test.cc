// Golden-file regression: serial smoke grids streamed through CsvSink must
// byte-match the files under tests/data/.  The workspace bit-equality tests
// catch FP-order drift *within* one binary; this file catches it *across*
// commits — any change to the pipeline's arithmetic, seeding, CSV schema or
// formatting shows up as a byte diff here.  Two goldens:
//
//   golden_smoke_grid.csv     the legacy default-pipeline grid, generated
//                             by the pre-scenario tree — byte-identity here
//                             proves the planning subsystem left the old
//                             arms untouched;
//   golden_planning_grid.csv  the planning-arm grid (scenario column +
//                             acs-scenario / acs-quantile / acs-mixture
//                             rows) — byte-identity pins the calibration,
//                             planning-point threading and planned-solve
//                             caching end to end.
//
// Regenerate deliberately with tests/data/regenerate_golden.sh (sets
// ACS_REGENERATE_GOLDEN so each test overwrites its golden instead of
// comparing) only when an output change is intended and documented.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "runner/csv_sink.h"
#include "runner/experiment_grid.h"
#include "runner/run_grid.h"
#include "util/simd.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::runner {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Scratch path for the freshly produced CSV, unique per process: test
/// runs from different build trees (e.g. the ASan job next to a plain
/// one) may execute concurrently, and a shared /tmp name would race.
std::string FreshPath(const std::string& stem) {
  return ::testing::TempDir() + stem + "." +
         std::to_string(static_cast<long long>(::getpid())) + ".csv";
}

/// When ACS_REGENERATE_GOLDEN is set, copies `fresh_path` over the golden
/// and returns true (the caller skips the comparison).  The deliberate
/// regeneration lane of tests/data/regenerate_golden.sh.
bool MaybeRegenerate(const std::string& fresh_path,
                     const std::string& golden_path) {
  if (std::getenv("ACS_REGENERATE_GOLDEN") == nullptr) {
    return false;
  }
  std::ofstream out(golden_path, std::ios::binary);
  out << ReadFile(fresh_path);
  EXPECT_TRUE(out.good()) << "cannot write " << golden_path;
  std::cout << "regenerated " << golden_path << "\n";
  return true;
}

model::TaskSet TinyFixedSet(const model::DvsModel& dvs) {
  model::Task a;
  a.name = "a";
  a.period = 10;
  a.wcec = 8.0;
  a.acec = 5.0;
  a.bcec = 2.0;
  model::Task b;
  b.name = "b";
  b.period = 20;
  b.wcec = 12.0;
  b.acec = 8.0;
  b.bcec = 4.0;
  return workload::ScaleToUtilization({a, b}, dvs, 0.6);
}

/// The grid behind the golden file.  To regenerate after an *intended*
/// output change: run this grid serially through a CsvSink (exactly as the
/// test body does) and overwrite tests/data/golden_smoke_grid.csv with the
/// produced file.
ExperimentGrid GoldenGrid(const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  gen.bcec_wcec_ratio = 0.3;
  gen.max_sub_instances = 24;

  ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {RandomSource("random-2", gen, 2),
                  FixedSource("tiny-fixed", TinyFixedSet(dvs))};
  grid.sigma_divisors = {6.0, 10.0};
  grid.workload_seeds = {0, 1};
  grid.methods = {"acs", "wcs", "static-vmax"};
  grid.hyper_periods = 10;
  grid.master_seed = 7;
  return grid;
}

TEST(GoldenCsv, SerialSmokeGridByteMatchesCheckedInFile) {
  // The goldens' bytes are defined at the scalar dispatch level: the
  // scalar kernels replicate the historical loops op for op, while the
  // vector levels fold reductions in a different FP association
  // (util/simd.h).  Pinning here keeps the byte contract meaningful on
  // any hardware; the scalar-vs-vector agreement contract is pinned
  // separately by util_simd_test.
  const util::simd::ScopedLevel scalar(util::simd::Level::kScalar);
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = GoldenGrid(cpu);

  const std::string fresh_path = FreshPath("golden_smoke_grid_fresh");
  {
    CsvSink sink(fresh_path);
    RunOptions options;
    options.threads = 1;  // serial: rows stream in cell order
    options.sink = &sink;
    const GridResult result = RunGrid(grid, options);
    ASSERT_EQ(result.failed_cells, 0u);
    ASSERT_EQ(sink.rows(), grid.CellCount() * grid.methods.size());
  }

  const std::string golden_path =
      std::string(ACS_TEST_DATA_DIR) + "/golden_smoke_grid.csv";
  if (MaybeRegenerate(fresh_path, golden_path)) {
    std::remove(fresh_path.c_str());
    GTEST_SKIP() << "golden regenerated, comparison skipped";
  }
  const std::string golden = ReadFile(golden_path);
  const std::string fresh = ReadFile(fresh_path);
  ASSERT_FALSE(golden.empty());
  // Byte equality, not row-set equality: FP formatting, column order and
  // row order are all part of the contract.
  EXPECT_EQ(fresh, golden)
      << "default-pipeline output drifted from the pre-scenario tree; if "
         "intended, regenerate tests/data/golden_smoke_grid.csv (see "
         "tests/data/regenerate_golden.sh)";
  std::remove(fresh_path.c_str());
}

/// The planning-arm golden grid: two scenarios x the three conditioned
/// arms (plus acs / wcs anchors), scenario CSV column on, test-sized
/// calibration.  Small enough to solve serially in test time, wide enough
/// that any drift in calibration, planning-point threading, planned-solve
/// caching or the mixture objective changes some byte.
ExperimentGrid GoldenPlanningGrid(const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 3;
  gen.bcec_wcec_ratio = 0.3;
  gen.max_sub_instances = 24;

  ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {RandomSource("random-3", gen, 1),
                  FixedSource("tiny-fixed", TinyFixedSet(dvs))};
  grid.scenarios = {"iid-normal", "heavy-tail", "bimodal"};
  grid.methods = {"acs", "acs-scenario", "acs-quantile", "acs-mixture",
                  "wcs"};
  grid.baseline = "acs";
  grid.planning.calibration_samples = 256;
  grid.planning.mixture_samples = 4;
  grid.hyper_periods = 10;
  grid.master_seed = 11;
  return grid;
}

TEST(GoldenCsv, SerialPlanningGridByteMatchesCheckedInFile) {
  // Scalar pin, same rationale as the legacy golden above.
  const util::simd::ScopedLevel scalar(util::simd::Level::kScalar);
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = GoldenPlanningGrid(cpu);

  const std::string fresh_path = FreshPath("golden_planning_grid_fresh");
  {
    CsvSink sink(fresh_path, /*scenario_column=*/true);
    RunOptions options;
    options.threads = 1;  // serial: rows stream in cell order
    options.sink = &sink;
    const GridResult result = RunGrid(grid, options);
    ASSERT_EQ(result.failed_cells, 0u);
    ASSERT_EQ(sink.rows(), grid.CellCount() * grid.methods.size());
  }

  const std::string golden_path =
      std::string(ACS_TEST_DATA_DIR) + "/golden_planning_grid.csv";
  if (MaybeRegenerate(fresh_path, golden_path)) {
    std::remove(fresh_path.c_str());
    GTEST_SKIP() << "golden regenerated, comparison skipped";
  }
  const std::string golden = ReadFile(golden_path);
  const std::string fresh = ReadFile(fresh_path);
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(fresh, golden)
      << "planning-arm output drifted; if intended, regenerate "
         "tests/data/golden_planning_grid.csv with "
         "tests/data/regenerate_golden.sh";
  std::remove(fresh_path.c_str());
}

}  // namespace
}  // namespace dvs::runner
