// Tests for the paper-faithful full NLP (constraints (6)-(14)).
#include "core/full_nlp.h"

#include <gtest/gtest.h>

#include "core/formulation.h"
#include "core/scheduler.h"
#include "util/error.h"
#include "fps/expansion.h"
#include "sim/engine.h"
#include "workload/motivation.h"
#include "workload/presets.h"

namespace dvs::core {
namespace {

TEST(FullNlp, MotivationExampleMatchesReducedFormulation) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);

  const ScheduleResult reduced = SolveAcs(fps, cpu);
  ASSERT_FALSE(reduced.used_fallback);

  const FullNlp full(fps, cpu);
  const FullNlpResult result =
      full.Solve(sim::BuildVmaxAsapSchedule(fps, cpu));

  // The full model must find (about) the same optimum: end-times near
  // {10, 15, 20} and average energy near 1.2e8.
  EXPECT_NEAR(result.schedule.end_time(0), 10.0, 0.3);
  EXPECT_NEAR(result.schedule.end_time(1), 15.0, 0.3);
  EXPECT_NEAR(result.schedule.end_time(2), 20.0, 0.3);
  EXPECT_NEAR(result.objective, reduced.predicted_energy,
              0.05 * reduced.predicted_energy);
}

TEST(FullNlp, SolutionIsWorstCaseFeasible) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const FullNlp full(fps, cpu);
  const FullNlpResult result =
      full.Solve(sim::BuildVmaxAsapSchedule(fps, cpu));
  const sim::FeasibilityReport report =
      sim::VerifyWorstCase(fps, result.schedule, cpu);
  EXPECT_TRUE(report.feasible) << report.detail;
}

TEST(FullNlp, SmallPreemptiveSystemAgreesWithReduced) {
  // Two tasks, the low-priority one split once: exercises the split-budget
  // constraints (12)-(14) of the paper formulation.
  model::Task hi;
  hi.name = "hi";
  hi.period = 5;
  hi.wcec = 4.0;
  hi.acec = 2.0;
  hi.bcec = 1.0;
  model::Task lo;
  lo.name = "lo";
  lo.period = 10;
  lo.wcec = 8.0;
  lo.acec = 4.0;
  lo.bcec = 2.0;
  const model::TaskSet set({hi, lo});
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const fps::FullyPreemptiveSchedule fps(set);

  const ScheduleResult reduced = SolveAcs(fps, cpu);
  const FullNlp full(fps, cpu);
  const FullNlpResult result = full.Solve(reduced.schedule);

  EXPECT_TRUE(sim::VerifyWorstCase(fps, result.schedule, cpu).feasible);
  // Non-convex model started at the reduced optimum: it must not move to
  // something meaningfully worse.
  const EnergyObjective avg(fps, cpu, Scenario::kAverage);
  const double full_energy =
      avg.Value(avg.PackSchedule(result.schedule));
  EXPECT_LE(full_energy, reduced.predicted_energy * 1.10);
}

TEST(FullNlp, PlanningPointThreadsThroughConstraints) {
  // The full-model twin of the reduced objective's planning threading: a
  // point well below ACEC must (a) stay worst-case feasible (planning
  // points never touch the WCEC envelope) and (b) reach a lower planned
  // objective than the ACEC solve — it optimises a lighter replay.  The
  // mixture shape has no paper-constraint counterpart and is rejected.
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);

  FullNlpOptions planned_options;
  for (model::TaskIndex i = 0; i < set.size(); ++i) {
    const model::Task& t = set.task(i);
    planned_options.planning.cycles.push_back(t.bcec +
                                              0.25 * (t.acec - t.bcec));
  }
  const FullNlp planned(fps, cpu, planned_options);
  const FullNlpResult result =
      planned.Solve(sim::BuildVmaxAsapSchedule(fps, cpu));
  const sim::FeasibilityReport report =
      sim::VerifyWorstCase(fps, result.schedule, cpu);
  EXPECT_TRUE(report.feasible) << report.detail;

  const FullNlp acec(fps, cpu);
  const FullNlpResult baseline =
      acec.Solve(sim::BuildVmaxAsapSchedule(fps, cpu));
  EXPECT_LT(result.objective, baseline.objective);

  FullNlpOptions mixture_options;
  mixture_options.planning.mixture = {{1.0, 1.0, 1.0}};
  EXPECT_THROW(FullNlp(fps, cpu, mixture_options), util::Error);
}

TEST(FullNlp, VariableLayoutIndices) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const FullNlp full(fps, cpu);
  EXPECT_EQ(full.dim(), 18u);  // 6 blocks x 3 sub-instances
  EXPECT_EQ(full.savg_index(1), 1u);
  EXPECT_EQ(full.e_index(1), 4u);
  EXPECT_EQ(full.wavg_index(1), 7u);
  EXPECT_EQ(full.wworst_index(1), 10u);
  EXPECT_EQ(full.vavg_index(1), 13u);
  EXPECT_EQ(full.vworst_index(1), 16u);
}

}  // namespace
}  // namespace dvs::core
