// Tests for the ASCII table and Gantt renderers.
#include <gtest/gtest.h>

#include "util/error.h"
#include "util/gantt.h"
#include "util/table.h"

namespace dvs::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "v"});
  table.AddRow({"short", "1"});
  table.AddRow({"a-much-longer-name", "2"});
  const std::string out = table.Render();
  // Both rows render at the same width.
  const std::size_t bar = out.find('\n');
  ASSERT_NE(bar, std::string::npos);
  const std::string first_line = out.substr(0, bar);
  EXPECT_NE(first_line.find("name"), std::string::npos);
  // All lines share the same length.
  std::size_t begin = 0;
  std::size_t expected = std::string::npos;
  while (begin < out.size()) {
    std::size_t end = out.find('\n', begin);
    if (end == std::string::npos) break;
    if (expected == std::string::npos) {
      expected = end - begin;
    } else {
      EXPECT_EQ(end - begin, expected);
    }
    begin = end + 1;
  }
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only-one"}), InvalidArgumentError);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), InvalidArgumentError);
}

TEST(GanttChart, RendersBars) {
  GanttChart chart(0.0, 10.0, 20);
  GanttRow& row = chart.AddRow("task");
  row.bars.push_back(GanttBar{0.0, 5.0, '#', ""});
  const std::string out = chart.Render();
  EXPECT_NE(out.find("task"), std::string::npos);
  EXPECT_NE(out.find("##########"), std::string::npos);  // half of 20 cells
  EXPECT_NE(out.find("0.0"), std::string::npos);
  EXPECT_NE(out.find("10.0"), std::string::npos);
}

TEST(GanttChart, ZeroWidthBarStaysVisible) {
  GanttChart chart(0.0, 10.0, 20);
  GanttRow& row = chart.AddRow("t");
  row.bars.push_back(GanttBar{5.0, 5.0, '#', ""});
  EXPECT_NE(chart.Render().find('|'), std::string::npos);
}

TEST(GanttChart, AnnotationAppearsWhenRoomAllows) {
  GanttChart chart(0.0, 10.0, 40);
  GanttRow& row = chart.AddRow("t");
  row.bars.push_back(GanttBar{0.0, 10.0, '#', "3.0V"});
  EXPECT_NE(chart.Render().find("3.0V"), std::string::npos);
}

TEST(GanttChart, RejectsDegenerateSpan) {
  EXPECT_THROW(GanttChart(5.0, 5.0, 20), InvalidArgumentError);
  EXPECT_THROW(GanttChart(0.0, 10.0, 4), InvalidArgumentError);
}

}  // namespace
}  // namespace dvs::util
