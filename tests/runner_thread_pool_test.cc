#include "runner/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "util/error.h"

namespace dvs::runner {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);

  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);

  const std::thread::id caller = std::this_thread::get_id();
  std::size_t calls = 0;
  pool.ParallelFor(64, [&](std::size_t) {
    // No worker threads exist, so everything runs on the calling thread and
    // the unsynchronised counter is safe.
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 64u);
}

TEST(ThreadPool, DefaultsToHardwareThreads) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::HardwareThreads());
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, RethrowsLowestIndexException) {
  ThreadPool pool(4);
  // Several indices throw; the pool must deterministically surface the one
  // from the lowest index regardless of interleaving.
  const auto run = [&] {
    pool.ParallelFor(100, [](std::size_t i) {
      if (i == 97 || i == 13 || i == 55) {
        throw std::runtime_error("boom at " + std::to_string(i));
      }
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  try {
    run();
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "boom at 13");
  }
}

TEST(ThreadPool, SurvivesExceptionAndRunsAgain) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(10, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);

  std::atomic<int> count{0};
  pool.ParallelFor(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.ParallelFor(16, [&](std::size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 136u);
  }
}

}  // namespace
}  // namespace dvs::runner
