// Tests for the discrete-event engine and the DVS policies.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include "dpm/dpm.h"
#include "fps/expansion.h"
#include "model/workload.h"
#include "sim/policy.h"
#include "sim/trace.h"
#include "util/error.h"
#include "util/math.h"
#include "workload/motivation.h"
#include "workload/presets.h"

namespace dvs::sim {
namespace {

model::Task MakeTask(std::string name, std::int64_t period, double wcec,
                     double acec_frac = 0.5) {
  model::Task t;
  t.name = std::move(name);
  t.period = period;
  t.wcec = wcec;
  t.acec = acec_frac * wcec;
  t.bcec = 0.25 * wcec;
  return t;
}

struct Harness {
  explicit Harness(model::TaskSet s)
      : set(std::move(s)), cpu(workload::DefaultModel()), fps(set) {}

  SimResult Run(const StaticSchedule& schedule, const DvsPolicy& policy,
                const model::WorkloadSampler& sampler,
                std::int64_t hyper_periods = 1, bool trace = true) {
    stats::Rng rng(1234);
    SimOptions options;
    options.hyper_periods = hyper_periods;
    options.record_trace = trace;
    return Simulate(fps, schedule, cpu, policy, sampler, rng, options);
  }

  model::TaskSet set;
  model::LinearDvsModel cpu;
  fps::FullyPreemptiveSchedule fps;
};

TEST(Engine, SingleTaskWorstCaseEnergyClosedForm) {
  // One task, WCEC 8 cycles, period 10; Vmax-ASAP schedule ends at
  // 8 * 0.25 = 2.0.  Worst-case run at Vmax: E = ceff * 16 * 8.
  Harness h(model::TaskSet({MakeTask("solo", 10, 8.0)}));
  const StaticSchedule schedule = BuildVmaxAsapSchedule(h.fps, h.cpu);
  EXPECT_DOUBLE_EQ(schedule.end_time(0), 2.0);
  const model::FixedWorkload worst(h.set, model::FixedScenario::kWorst);
  const GreedyReclaimPolicy policy(h.cpu);
  const SimResult result = h.Run(schedule, policy, worst);
  EXPECT_DOUBLE_EQ(result.total_energy, 16.0 * 8.0);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_EQ(result.completed_instances, 1);
  EXPECT_DOUBLE_EQ(result.busy_time, 2.0);
  EXPECT_DOUBLE_EQ(result.idle_time, 0.0);  // nothing left to wait for
}

TEST(Engine, StretchedEndTimeLowersVoltage) {
  // Same task, end-time stretched to the deadline: V = 8 cycles / 10 ms
  // at k=1 -> 0.8 V.  E = 0.64 * 8 = 5.12.
  Harness h(model::TaskSet({MakeTask("solo", 10, 8.0)}));
  const StaticSchedule schedule(h.fps, {10.0}, {8.0});
  const model::FixedWorkload worst(h.set, model::FixedScenario::kWorst);
  const GreedyReclaimPolicy policy(h.cpu);
  const SimResult result = h.Run(schedule, policy, worst);
  EXPECT_NEAR(result.total_energy, 0.64 * 8.0, 1e-9);
  EXPECT_EQ(result.deadline_misses, 0);
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_NEAR(result.trace.slices()[0].voltage, 0.8, 1e-12);
  EXPECT_NEAR(result.trace.slices()[0].end, 10.0, 1e-9);
}

TEST(Engine, VminClampFinishesEarly) {
  // Tiny workload in a huge window -> clamp at vmin (0.5 V), finish early.
  Harness h(model::TaskSet({MakeTask("solo", 100, 1.0)}));
  const StaticSchedule schedule(h.fps, {100.0}, {1.0});
  const model::FixedWorkload worst(h.set, model::FixedScenario::kWorst);
  const GreedyReclaimPolicy policy(h.cpu);
  const SimResult result = h.Run(schedule, policy, worst);
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_DOUBLE_EQ(result.trace.slices()[0].voltage, 0.5);
  // 1 cycle at speed 0.5 -> 2 ms.
  EXPECT_NEAR(result.trace.slices()[0].end, 2.0, 1e-9);
  EXPECT_NEAR(result.total_energy, 0.25 * 1.0, 1e-12);
}

TEST(Engine, RmPreemptionOrder) {
  // High-priority task (period 5) preempts the low one (period 10) at t=5:
  // hi runs [0, 1.5], lo needs 4 time units at Vmax and so still holds
  // 2 cycles when hi's second instance releases.
  Harness h(model::TaskSet(
      {MakeTask("hi", 5, 6.0, 1.0), MakeTask("lo", 10, 16.0, 1.0)}));
  const StaticSchedule schedule = BuildVmaxAsapSchedule(h.fps, h.cpu);
  const model::FixedWorkload worst(h.set, model::FixedScenario::kWorst);
  const GreedyReclaimPolicy policy(h.cpu);
  const SimResult result = h.Run(schedule, policy, worst);
  EXPECT_EQ(result.deadline_misses, 0);
  // Trace: hi runs first at t=0; lo afterwards; hi's second instance
  // preempts lo's remainder at t=5 (Vmax-ASAP keeps everyone at Vmax).
  const auto& slices = result.trace.slices();
  ASSERT_GE(slices.size(), 3u);
  EXPECT_EQ(slices[0].task, 0u);
  EXPECT_EQ(slices[1].task, 1u);
  bool hi_preempts = false;
  for (std::size_t i = 1; i < slices.size(); ++i) {
    if (slices[i].task == 0 && slices[i - 1].task == 1 &&
        util::AlmostEqual(slices[i].begin, 5.0)) {
      hi_preempts = true;
    }
  }
  EXPECT_TRUE(hi_preempts);
  EXPECT_GE(result.preemptions, 1);
}

TEST(Engine, TraceAuditCleanOnRandomishScenario) {
  Harness h(model::TaskSet({MakeTask("a", 10, 8.0), MakeTask("b", 20, 12.0),
                            MakeTask("c", 40, 16.0)}));
  const StaticSchedule schedule = BuildVmaxAsapSchedule(h.fps, h.cpu);
  const model::TruncatedNormalWorkload sampler(h.set, 6.0);
  const GreedyReclaimPolicy policy(h.cpu);
  const SimResult result = h.Run(schedule, policy, sampler, 5);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_EQ(AuditTrace(result.trace, h.set, h.cpu), "");
  EXPECT_EQ(result.completed_instances, 5 * (4 + 2 + 1));
}

TEST(Engine, EnergyMatchesTraceIntegral) {
  Harness h(model::TaskSet({MakeTask("a", 10, 8.0), MakeTask("b", 20, 12.0)}));
  const StaticSchedule schedule = BuildVmaxAsapSchedule(h.fps, h.cpu);
  const model::TruncatedNormalWorkload sampler(h.set, 6.0);
  const GreedyReclaimPolicy policy(h.cpu);
  const SimResult result = h.Run(schedule, policy, sampler, 3);
  double integral = 0.0;
  for (const ExecutionSlice& s : result.trace.slices()) {
    integral += h.cpu.Energy(s.voltage, s.cycles);
  }
  EXPECT_NEAR(integral, result.total_energy,
              1e-9 * std::max(1.0, result.total_energy));
}

TEST(Engine, DeterministicForFixedSeed) {
  Harness h(model::TaskSet({MakeTask("a", 10, 8.0), MakeTask("b", 25, 20.0)}));
  const StaticSchedule schedule = BuildVmaxAsapSchedule(h.fps, h.cpu);
  const model::TruncatedNormalWorkload sampler(h.set, 6.0);
  const GreedyReclaimPolicy policy(h.cpu);
  const SimResult a = h.Run(schedule, policy, sampler, 4, false);
  const SimResult b = h.Run(schedule, policy, sampler, 4, false);
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.dispatches, b.dispatches);
}

TEST(Engine, VmaxPolicyIsTheEnergyCeiling) {
  Harness h(model::TaskSet({MakeTask("a", 10, 8.0), MakeTask("b", 20, 12.0)}));
  const StaticSchedule schedule = BuildVmaxAsapSchedule(h.fps, h.cpu);
  const model::TruncatedNormalWorkload sampler(h.set, 6.0);
  const VmaxPolicy vmax(h.cpu);
  const GreedyReclaimPolicy greedy(h.cpu);
  const SimResult r_vmax = h.Run(schedule, vmax, sampler, 3, false);
  const SimResult r_greedy = h.Run(schedule, greedy, sampler, 3, false);
  EXPECT_GE(r_vmax.total_energy, r_greedy.total_energy);
  EXPECT_EQ(r_vmax.deadline_misses, 0);
}

TEST(Engine, StaticOnlyPolicyReclaimsNothing) {
  // With static-only voltages the energy is insensitive to the actual
  // workload staying below WCEC per-sub... it still shrinks with fewer
  // executed cycles, but voltages never drop below the planned ones, so
  // greedy reclamation is at least as good.
  Harness h(model::TaskSet({MakeTask("a", 10, 8.0), MakeTask("b", 20, 12.0)}));
  const StaticSchedule schedule = BuildVmaxAsapSchedule(h.fps, h.cpu);
  const model::TruncatedNormalWorkload sampler(h.set, 6.0);
  const StaticOnlyPolicy static_only(h.fps, schedule, h.cpu);
  const GreedyReclaimPolicy greedy(h.cpu);
  const SimResult r_static = h.Run(schedule, static_only, sampler, 3, false);
  const SimResult r_greedy = h.Run(schedule, greedy, sampler, 3, false);
  EXPECT_EQ(r_static.deadline_misses, 0);
  EXPECT_GE(r_static.total_energy, r_greedy.total_energy - 1e-9);
}

TEST(Engine, TransitionOverheadChargesEnergyAndTime) {
  Harness h(model::TaskSet({MakeTask("a", 10, 8.0), MakeTask("b", 20, 12.0)}));
  const StaticSchedule schedule = BuildVmaxAsapSchedule(h.fps, h.cpu);
  const model::TruncatedNormalWorkload sampler(h.set, 6.0);
  const GreedyReclaimPolicy policy(h.cpu);

  stats::Rng rng_a(5);
  SimOptions plain;
  plain.hyper_periods = 3;
  const SimResult no_overhead =
      Simulate(h.fps, schedule, h.cpu, policy, sampler, rng_a, plain);

  stats::Rng rng_b(5);
  SimOptions with_overhead = plain;
  with_overhead.transition = model::TransitionOverhead{1e-4, 0.5};
  const SimResult overhead =
      Simulate(h.fps, schedule, h.cpu, policy, sampler, rng_b, with_overhead);

  EXPECT_GT(overhead.transition_energy, 0.0);
  EXPECT_GT(overhead.stall_time, 0.0);
  EXPECT_GT(overhead.total_energy, no_overhead.total_energy);
  EXPECT_EQ(overhead.deadline_misses, 0);  // tiny overhead stays harmless
}

TEST(Engine, CountsVoltageSwitches) {
  Harness h(model::TaskSet({MakeTask("a", 10, 8.0), MakeTask("b", 20, 12.0)}));
  const StaticSchedule schedule = BuildVmaxAsapSchedule(h.fps, h.cpu);
  const model::TruncatedNormalWorkload sampler(h.set, 6.0);
  const GreedyReclaimPolicy policy(h.cpu);
  const SimResult result = h.Run(schedule, policy, sampler, 2, false);
  EXPECT_GT(result.voltage_switches, 0);
}

TEST(Engine, RejectsNonPositiveHyperPeriods) {
  Harness h(model::TaskSet({MakeTask("a", 10, 8.0)}));
  const StaticSchedule schedule = BuildVmaxAsapSchedule(h.fps, h.cpu);
  const model::FixedWorkload sampler(h.set, model::FixedScenario::kWorst);
  const GreedyReclaimPolicy policy(h.cpu);
  stats::Rng rng(1);
  SimOptions options;
  options.hyper_periods = 0;
  EXPECT_THROW(
      Simulate(h.fps, schedule, h.cpu, policy, sampler, rng, options),
      util::InvalidArgumentError);
}

TEST(Engine, BestCaseWorkloadUsesLessEnergyThanWorst) {
  Harness h(model::TaskSet({MakeTask("a", 10, 8.0), MakeTask("b", 20, 12.0)}));
  const StaticSchedule schedule = BuildVmaxAsapSchedule(h.fps, h.cpu);
  const GreedyReclaimPolicy policy(h.cpu);
  const model::FixedWorkload best(h.set, model::FixedScenario::kBest);
  const model::FixedWorkload worst(h.set, model::FixedScenario::kWorst);
  const SimResult r_best = h.Run(schedule, policy, best, 2, false);
  const SimResult r_worst = h.Run(schedule, policy, worst, 2, false);
  EXPECT_LT(r_best.total_energy, r_worst.total_energy);
}

TEST(GreedyPolicy, VoltageFromBudgetAndWindow) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const GreedyReclaimPolicy policy(cpu);
  DispatchContext ctx;
  ctx.budget_remaining = 8.0;
  ctx.local_time = 2.0;
  ctx.sub_end_time = 6.0;   // window 4 -> speed 2 -> V = 2
  ctx.sub_release = 0.0;
  const DispatchDecision d = policy.Dispatch(ctx);
  EXPECT_FALSE(d.not_before.has_value());
  EXPECT_NEAR(d.voltage, 2.0, 1e-12);
}

TEST(GreedyPolicy, GatesBeforeSegmentStart) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const GreedyReclaimPolicy gated(cpu, /*allow_early_start=*/false);
  const GreedyReclaimPolicy eager(cpu, /*allow_early_start=*/true);
  DispatchContext ctx;
  ctx.budget_remaining = 8.0;
  ctx.local_time = 1.0;
  ctx.sub_release = 3.0;
  ctx.sub_end_time = 7.0;
  const DispatchDecision d_gated = gated.Dispatch(ctx);
  ASSERT_TRUE(d_gated.not_before.has_value());
  EXPECT_DOUBLE_EQ(*d_gated.not_before, 3.0);
  const DispatchDecision d_eager = eager.Dispatch(ctx);
  EXPECT_FALSE(d_eager.not_before.has_value());
  EXPECT_NEAR(d_eager.voltage, 8.0 / 6.0, 1e-12);  // window 6 from t=1
}

TEST(GreedyPolicy, LateDispatchSaturatesAtVmax) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const GreedyReclaimPolicy policy(cpu);
  DispatchContext ctx;
  ctx.budget_remaining = 8.0;
  ctx.local_time = 9.0;
  ctx.sub_end_time = 6.0;  // already past: degenerate window
  ctx.sub_release = 0.0;
  EXPECT_DOUBLE_EQ(policy.Dispatch(ctx).voltage, cpu.vmax());
}

// Degenerate dispatch regression: a window of exactly zero (dispatched at
// the scheduled end, e.g. right at a hyper-period wrap) and an exhausted
// worst-case budget with a live instance must both run flat out.  The old
// zero-budget path stretched "0 cycles" through VoltageForWork's
// cycles == 0 guard into vmin — the slowest possible speed at the moment
// the schedule has no slack left.
TEST(GreedyPolicy, ZeroWindowAndZeroBudgetClampToVmax) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const GreedyReclaimPolicy policy(cpu);
  DispatchContext ctx;
  ctx.budget_remaining = 8.0;
  ctx.local_time = 6.0;
  ctx.sub_end_time = 6.0;  // window == 0 exactly
  ctx.sub_release = 0.0;
  EXPECT_DOUBLE_EQ(policy.Dispatch(ctx).voltage, cpu.vmax());

  ctx.budget_remaining = 0.0;  // budget gone, instance still has cycles
  ctx.local_time = 2.0;
  ctx.sub_end_time = 6.0;  // positive window
  EXPECT_DOUBLE_EQ(policy.Dispatch(ctx).voltage, cpu.vmax());
}

// Engine-level wrap-boundary companion: a sub-instance whose worst-case
// budget is zero (a degenerate schedule row) still carries real drawn
// cycles.  At vmin (the old zero-budget behavior) 8 cycles need 16 ms
// against a 10 ms period — a guaranteed miss every hyper-period; at vmax
// they finish in 2 ms.  Two hyper-periods cover the wrap.
TEST(Engine, ZeroBudgetSubRunsAtVmaxWithoutMissing) {
  Harness h(model::TaskSet({MakeTask("solo", 10, 8.0)}));
  const StaticSchedule schedule(h.fps, {10.0}, {0.0});
  const model::FixedWorkload worst(h.set, model::FixedScenario::kWorst);
  const GreedyReclaimPolicy policy(h.cpu);
  const SimResult result = h.Run(schedule, policy, worst, /*hyper_periods=*/2);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_EQ(result.completed_instances, 2);
  // Both instances at Vmax: E = ceff * vmax^2 * cycles = 16 * 8 per HP.
  EXPECT_NEAR(result.total_energy, 2.0 * 16.0 * 8.0, 1e-9);
}

// Regression for the transition-stall deadline hazard: the stall advances
// the clock *after* the policy sized the voltage for the pre-stall window,
// so a slice planned to just meet its deadline used to land late by the
// stall.  Two equal-period tasks, stretched ends {10, 20}: "a" runs [0,10]
// at 0.8 V, then "b" needs 16 cycles in [10,20] -> 1.6 V, and the
// 0.8 V switch at time_per_volt=0.1 stalls 0.08 ms.  Pre-fix, b finished
// at 20.08 and missed; the ratchet now raises b's voltage against its own
// stall and the deadline holds.
TEST(Engine, TransitionStallDoesNotPushTightDeadlineLate) {
  Harness h(model::TaskSet(
      {MakeTask("a", 20, 8.0, 1.0), MakeTask("b", 20, 16.0, 1.0)}));
  const StaticSchedule schedule(h.fps, {10.0, 20.0}, {8.0, 16.0});
  const model::FixedWorkload worst(h.set, model::FixedScenario::kWorst);
  const GreedyReclaimPolicy policy(h.cpu);

  stats::Rng rng(1);
  SimOptions options;
  options.hyper_periods = 1;
  options.transition = model::TransitionOverhead{0.01, 0.1};
  const SimResult result =
      Simulate(h.fps, schedule, h.cpu, policy, worst, rng, options);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_GT(result.stall_time, 0.0);
  EXPECT_GE(result.voltage_switches, 1);
  EXPECT_LE(result.makespan, 20.0 + 1e-6);
}

// DPM sleep accounting, closed form.  One task, 1 cycle, period 100: the
// vmin clamp finishes it at t=2, leaving one 98 ms idle interval.  Under a
// 0.5/ms floor the "deep" preset (2% residency, 1 ms round trip, one
// floor-ms per transition pair) commits a single sleep:
//   sleep_energy = 0.5 + 0.01*(98-1) = 1.47
//   idle_energy  = 0.5 * (100 - 98)  = 1.0   (floor paid only while awake)
//   total        = 0.25 (dynamic) + 1.0 + 1.47 = 2.72
// versus 0.25 + 0.5*98 + 1.0 = 50.25 had the floor run through the gap.
TEST(Engine, DpmSleepAccountingClosedForm) {
  Harness h(model::TaskSet({MakeTask("solo", 100, 1.0)}));
  const StaticSchedule schedule(h.fps, {100.0}, {1.0});
  const model::FixedWorkload worst(h.set, model::FixedScenario::kWorst);
  const GreedyReclaimPolicy policy(h.cpu);
  const model::IdlePower idle{0.5};

  stats::Rng rng(1);
  SimOptions options;
  options.hyper_periods = 1;
  options.dpm = true;
  options.idle_power = idle;
  options.sleep = dpm::ResolveSleepState("deep", idle);
  const SimResult deep =
      Simulate(h.fps, schedule, h.cpu, policy, worst, rng, options);
  EXPECT_EQ(deep.deadline_misses, 0);
  EXPECT_EQ(deep.sleeps, 1);
  EXPECT_NEAR(deep.sleep_time, 98.0, 1e-9);
  EXPECT_NEAR(deep.sleep_energy, 1.47, 1e-9);
  EXPECT_NEAR(deep.idle_energy, 1.0, 1e-9);
  EXPECT_NEAR(deep.total_energy, 0.25 + 1.0 + 1.47, 1e-9);

  // The "ideal" preset is the savings bound: zero-cost gating leaves only
  // the awake floor around the gap.
  stats::Rng rng_ideal(1);
  SimOptions ideal_options = options;
  ideal_options.sleep = dpm::ResolveSleepState("ideal", idle);
  const SimResult ideal =
      Simulate(h.fps, schedule, h.cpu, policy, worst, rng_ideal, ideal_options);
  EXPECT_NEAR(ideal.sleep_energy, 0.0, 1e-12);
  EXPECT_NEAR(ideal.total_energy, 0.25 + 1.0, 1e-9);
  EXPECT_LE(ideal.total_energy, deep.total_energy);
}

// Timed sleeps only ever touch the energy ledger: the dispatch sequence,
// busy time and completions are identical with DPM on and off.
TEST(Engine, DpmLeavesTheScheduleUntouched) {
  Harness h(model::TaskSet({MakeTask("a", 10, 8.0), MakeTask("b", 20, 12.0)}));
  const StaticSchedule schedule = BuildVmaxAsapSchedule(h.fps, h.cpu);
  const model::TruncatedNormalWorkload sampler(h.set, 6.0);
  const GreedyReclaimPolicy policy(h.cpu);
  const model::IdlePower idle{0.3};

  stats::Rng rng_off(9);
  SimOptions off;
  off.hyper_periods = 4;
  off.record_trace = true;
  const SimResult plain =
      Simulate(h.fps, schedule, h.cpu, policy, sampler, rng_off, off);

  stats::Rng rng_on(9);
  SimOptions on = off;
  on.dpm = true;
  on.idle_power = idle;
  on.sleep = dpm::ResolveSleepState("deep", idle);
  const SimResult managed =
      Simulate(h.fps, schedule, h.cpu, policy, sampler, rng_on, on);

  EXPECT_EQ(managed.deadline_misses, plain.deadline_misses);
  EXPECT_EQ(managed.completed_instances, plain.completed_instances);
  EXPECT_EQ(managed.voltage_switches, plain.voltage_switches);
  EXPECT_DOUBLE_EQ(managed.busy_time, plain.busy_time);
  EXPECT_DOUBLE_EQ(managed.makespan, plain.makespan);
  ASSERT_EQ(managed.trace.size(), plain.trace.size());
  // The DPM ledger sits strictly on top of the identical dynamic energy.
  EXPECT_NEAR(managed.total_energy,
              plain.total_energy + managed.idle_energy + managed.sleep_energy,
              1e-9);
  EXPECT_LE(managed.sleep_time, managed.idle_time + 1e-9);
}

}  // namespace
}  // namespace dvs::sim
