// Persistent solve-cache contract (core/solve_store.h).
//
// The entry format round-trips bit-exactly; every rejection class —
// corruption, truncation, foreign schema version, foreign fingerprint —
// degrades to a miss instead of aborting; the writer LOCK is exclusive per
// directory while read-only opens never lock; a grid run that writes its
// solves back and a fresh process that pre-seeds from them stream
// byte-identical CSVs; and the workspace's byte-budget LRU evicts into the
// attached store.
#include "core/solve_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/eval_workspace.h"
#include "obs/metrics.h"
#include "runner/csv_sink.h"
#include "runner/experiment_grid.h"
#include "runner/run_grid.h"
#include "util/error.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::core {
namespace {

std::string FreshDir(const std::string& stem) {
  return ::testing::TempDir() + stem + "." +
         std::to_string(static_cast<long long>(::getpid()));
}

/// Empties a store directory so repeated test-binary runs stay cold.
void PurgeDir(const std::string& dir) {
  SolveStore store(dir);
  for (std::uint64_t key : store.DiskKeys()) {
    std::remove(store.EntryPath(key).c_str());
  }
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << bytes;
}

model::TaskSet TwoTaskSet(const std::string& prefix) {
  model::Task a;
  a.name = prefix + "-a";
  a.period = 10;
  a.wcec = 8.0;
  a.acec = 5.0;
  a.bcec = 2.0;
  model::Task b;
  b.name = prefix + "-b";
  b.period = 20;
  b.wcec = 12.0;
  b.acec = 8.0;
  b.bcec = 4.0;
  return model::TaskSet({a, b});
}

/// A set whose prepared footprint (expansion records scale with the
/// sub-instance count) dwarfs TwoTaskSet's — the oversized-entry case of
/// the byte-budget tests.  Low per-task demand keeps it RM-feasible.
model::TaskSet ManyTaskSet(const std::string& prefix, int count) {
  std::vector<model::Task> tasks;
  for (int i = 0; i < count; ++i) {
    model::Task task;
    task.name = prefix + "-" + std::to_string(i);
    task.period = (i % 2 == 0) ? 10 : 20;
    task.wcec = 0.05;
    task.acec = 0.03;
    task.bcec = 0.01;
    tasks.push_back(task);
  }
  return model::TaskSet(tasks);
}

/// A StoredCell with every optional populated: both whole-set solves, the
/// vmax schedule, one planned solve with a chain and a mixture, and one
/// calibration with draws.
StoredCell FullCell(const model::TaskSet& set, const ModelDescriptor& model) {
  StoredCell cell(set);
  cell.model = model;
  cell.scheduler = SchedulerOptions{};

  StoredScheduleResult wcs;
  wcs.schedule.end_times = {1.25, 3.5, 7.0};
  wcs.schedule.worst_budgets = {8.0, 12.0, 8.0};
  wcs.predicted_energy = 42.5;
  wcs.alm.feasible = true;
  wcs.alm.outer_iterations = 3;
  wcs.alm.total_inner_iterations = 17;
  wcs.alm.evaluations = 88;
  wcs.alm.final_value = 42.5;
  wcs.alm.max_violation = 1e-9;
  wcs.alm.final_penalty = 10.0;
  wcs.alm.multipliers = {0.5, -0.25};
  cell.wcs = wcs;

  StoredScheduleResult acs = wcs;
  acs.predicted_energy = 30.75;
  acs.used_fallback = true;
  cell.acs = acs;

  StoredSchedule vmax;
  vmax.end_times = {1.0, 2.0, 4.0};
  vmax.worst_budgets = {8.0, 12.0, 8.0};
  cell.vmax_asap = vmax;

  StoredPlannedSolve planned;
  planned.planning.cycles = {6.5, 9.25};
  planned.planning.mixture = {{5.0, 8.0}, {6.0, 9.0}};
  PlanningPoint ancestor;
  ancestor.cycles = {5.5, 8.5};
  planned.chain = {ancestor};
  planned.result = wcs;
  cell.planned.push_back(planned);

  StoredCalibration calibration;
  calibration.scenario_key = "heavy-tail";
  calibration.sigma_divisor = 6.0;
  calibration.seed = 99;
  calibration.samples = 4;
  calibration.calibration.samples_per_task = 4;
  calibration.calibration.mean = {5.1, 8.2};
  calibration.calibration.stddev = {0.4, 0.9};
  calibration.calibration.draws = {{5.0, 5.2}, {8.0, 8.4}};
  calibration.calibration.sorted = {{5.0, 5.2}, {8.0, 8.4}};
  cell.calibrations.push_back(calibration);
  return cell;
}

void ExpectResultEq(const StoredScheduleResult& a,
                    const StoredScheduleResult& b) {
  EXPECT_EQ(a.schedule.end_times, b.schedule.end_times);
  EXPECT_EQ(a.schedule.worst_budgets, b.schedule.worst_budgets);
  EXPECT_EQ(ModelDescriptor::BitsOf(a.predicted_energy),
            ModelDescriptor::BitsOf(b.predicted_energy));
  EXPECT_EQ(a.alm.feasible, b.alm.feasible);
  EXPECT_EQ(a.alm.inner_status, b.alm.inner_status);
  EXPECT_EQ(a.alm.outer_iterations, b.alm.outer_iterations);
  EXPECT_EQ(a.alm.total_inner_iterations, b.alm.total_inner_iterations);
  EXPECT_EQ(a.alm.evaluations, b.alm.evaluations);
  EXPECT_EQ(a.alm.multipliers, b.alm.multipliers);
  EXPECT_EQ(a.used_fallback, b.used_fallback);
}

TEST(SolveStoreFormat, SerializeRoundTripIsBitExact) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = TwoTaskSet("rt");
  const StoredCell cell = FullCell(set, DescribeModel(cpu));

  const std::string bytes = SerializeStoredCell(cell);
  const StoredCell back = DeserializeStoredCell(bytes);

  ASSERT_EQ(back.set.size(), set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(back.set.task(i).name, set.task(i).name);
    EXPECT_EQ(back.set.task(i).period, set.task(i).period);
    EXPECT_EQ(ModelDescriptor::BitsOf(back.set.task(i).wcec),
              ModelDescriptor::BitsOf(set.task(i).wcec));
    EXPECT_EQ(ModelDescriptor::BitsOf(back.set.task(i).acec),
              ModelDescriptor::BitsOf(set.task(i).acec));
    EXPECT_EQ(ModelDescriptor::BitsOf(back.set.task(i).bcec),
              ModelDescriptor::BitsOf(set.task(i).bcec));
  }
  EXPECT_EQ(back.model, cell.model);
  EXPECT_EQ(back.EntryKey(), cell.EntryKey());
  ASSERT_TRUE(back.wcs.has_value());
  ExpectResultEq(*back.wcs, *cell.wcs);
  ASSERT_TRUE(back.acs.has_value());
  ExpectResultEq(*back.acs, *cell.acs);
  EXPECT_TRUE(back.acs->used_fallback);
  ASSERT_TRUE(back.vmax_asap.has_value());
  EXPECT_EQ(back.vmax_asap->end_times, cell.vmax_asap->end_times);
  ASSERT_EQ(back.planned.size(), 1u);
  EXPECT_EQ(back.planned[0].planning, cell.planned[0].planning);
  EXPECT_EQ(back.planned[0].chain, cell.planned[0].chain);
  ExpectResultEq(back.planned[0].result, cell.planned[0].result);
  ASSERT_EQ(back.calibrations.size(), 1u);
  EXPECT_EQ(back.calibrations[0].scenario_key, "heavy-tail");
  EXPECT_EQ(back.calibrations[0].seed, 99u);
  EXPECT_EQ(back.calibrations[0].calibration.draws,
            cell.calibrations[0].calibration.draws);

  // A second serialization of the restored cell is byte-identical — the
  // canonical form is a fixed point.
  EXPECT_EQ(SerializeStoredCell(back), bytes);
}

TEST(SolveStoreFormat, RejectsEveryCorruptionClass) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const StoredCell cell = FullCell(TwoTaskSet("bad"), DescribeModel(cpu));
  const std::string bytes = SerializeStoredCell(cell);

  // Bad magic.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(DeserializeStoredCell(bad_magic), util::Error);

  // Foreign schema version (byte 4 is the version's low byte; the header
  // is outside the checksum, so this exercises the version check itself).
  std::string bad_version = bytes;
  bad_version[4] = static_cast<char>(bad_version[4] + 1);
  EXPECT_THROW(DeserializeStoredCell(bad_version), util::Error);

  // Payload bit-flip -> checksum mismatch.
  std::string flipped = bytes;
  flipped[bytes.size() / 2] = static_cast<char>(flipped[bytes.size() / 2] ^ 1);
  EXPECT_THROW(DeserializeStoredCell(flipped), util::Error);

  // Truncation.
  EXPECT_THROW(DeserializeStoredCell(bytes.substr(0, bytes.size() - 3)),
               util::Error);
  EXPECT_THROW(DeserializeStoredCell(bytes.substr(0, 10)), util::Error);
  EXPECT_THROW(DeserializeStoredCell(""), util::Error);
}

TEST(SolveStoreDir, LoadRejectsDamagedAndForeignFilesAsMisses) {
  const std::string dir = FreshDir("solve_store_reject");
  PurgeDir(dir);
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ModelDescriptor model = DescribeModel(cpu);
  const model::TaskSet set_a = TwoTaskSet("a");
  const model::TaskSet set_b = TwoTaskSet("b");
  const SchedulerOptions scheduler;

  {
    SolveStore writer(dir);
    writer.Absorb(FullCell(set_a, model));
    EXPECT_EQ(writer.WriteBack(), 1u);
  }

  const std::uint64_t key_a = SolveStoreEntryKey(set_a, model, scheduler);
  const std::uint64_t key_b = SolveStoreEntryKey(set_b, model, scheduler);
  ASSERT_NE(key_a, key_b);

  {
    // Clean reload hits.
    SolveStore reader(dir, /*read_only=*/true);
    EXPECT_TRUE(reader.Load(set_a, model, scheduler).has_value());
    // Absent key is a plain miss.
    EXPECT_FALSE(reader.Load(set_b, model, scheduler).has_value());
  }

  // Foreign fingerprint: set_a's entry renamed onto set_b's key parses
  // fine but answers the wrong question.
  {
    SolveStore reader(dir, /*read_only=*/true);
    WriteFile(reader.EntryPath(key_b), ReadFile(reader.EntryPath(key_a)));
    EXPECT_FALSE(reader.Load(set_b, model, scheduler).has_value());
  }

  // Corrupt file on the right key: reject, not abort.
  {
    SolveStore reader(dir, /*read_only=*/true);
    std::string bytes = ReadFile(reader.EntryPath(key_a));
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
    WriteFile(reader.EntryPath(key_a), bytes);
    EXPECT_FALSE(reader.Load(set_a, model, scheduler).has_value());
  }
}

TEST(SolveStoreDir, WriterLockIsExclusivePerDirectory) {
  const std::string dir = FreshDir("solve_store_lock");
  PurgeDir(dir);
  {
    SolveStore writer(dir);
    // Second concurrent writer hard-errors...
    EXPECT_THROW(SolveStore second(dir), util::Error);
    // ...while read-only opens coexist with the writer.
    SolveStore reader(dir, /*read_only=*/true);
    EXPECT_TRUE(reader.read_only());
  }
  // The lock dies with the writer.
  SolveStore next(dir);
}

runner::ExperimentGrid PlanningGrid(const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 3;
  gen.bcec_wcec_ratio = 0.3;
  gen.max_sub_instances = 24;

  runner::ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {runner::RandomSource("random-3", gen, 1)};
  grid.scenarios = {"iid-normal", "heavy-tail"};
  grid.methods = {"acs", "acs-scenario", "acs-quantile", "wcs"};
  grid.baseline = "acs";
  grid.planning.calibration_samples = 64;
  grid.hyper_periods = 5;
  grid.master_seed = 13;
  return grid;
}

TEST(SolveStoreGrid, WarmBootStreamsByteIdenticalCsv) {
  const std::string dir = FreshDir("solve_store_grid");
  PurgeDir(dir);
  const std::string cold_csv = ::testing::TempDir() + "store_cold.csv";
  const std::string warm_csv = ::testing::TempDir() + "store_warm.csv";
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const runner::ExperimentGrid grid = PlanningGrid(cpu);

  obs::MetricsRegistry metrics;
  obs::InstallMetrics(&metrics);

  const auto run = [&](const std::string& csv_path) {
    std::vector<EvalWorkspace> workspaces;
    SolveStore store(dir);
    runner::CsvSink sink(csv_path, /*scenario_column=*/true,
                         /*solver_stats_columns=*/false);
    runner::RunOptions options;
    options.threads = 1;
    options.sink = &sink;
    options.workspaces = &workspaces;
    options.solve_store = &store;
    const runner::GridResult result = runner::RunGrid(grid, options);
    EXPECT_EQ(result.failed_cells, 0u);
    EXPECT_GT(store.WriteBack(), 0u);
  };

  run(cold_csv);
  std::int64_t cold_hits = 0;
  for (const obs::AggregatedMetric& m : metrics.Aggregate()) {
    if (m.name == "persist.cache_hits") {
      cold_hits = m.count;
    }
  }

  run(warm_csv);
  std::int64_t warm_hits = 0;
  std::int64_t write_backs = 0;
  for (const obs::AggregatedMetric& m : metrics.Aggregate()) {
    if (m.name == "persist.cache_hits") {
      warm_hits = m.count;
    } else if (m.name == "persist.write_backs") {
      write_backs = m.count;
    }
  }
  obs::InstallMetrics(nullptr);

  // The warm boot pre-seeded from disk (a fresh store + fresh workspaces,
  // so the hits can only come from the directory) ...
  EXPECT_GT(warm_hits, cold_hits);
  EXPECT_GT(write_backs, 0);
  // ... and moved no byte in the results.
  const std::string cold = ReadFile(cold_csv);
  EXPECT_FALSE(cold.empty());
  EXPECT_EQ(cold, ReadFile(warm_csv));
}

TEST(SolveStoreEviction, ByteBudgetEvictsLruIntoStore) {
  const std::string dir = FreshDir("solve_store_evict");
  PurgeDir(dir);
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const SchedulerOptions scheduler;

  obs::MetricsRegistry metrics;
  obs::InstallMetrics(&metrics);
  metrics.EnsureShards(1);

  {
    obs::ScopedMetricsShard scoped(&metrics.Shard(0));
    SolveStore store(dir);
    EvalWorkspace workspace;
    workspace.set_solve_store(&store);
    // Any entry busts a 1-byte budget, so every *new* Prepare() evicts the
    // previous entry — but never the one it just built.
    workspace.set_prepared_budget_bytes(1);
    for (int i = 0; i < 3; ++i) {
      const model::TaskSet set = TwoTaskSet("evict-" + std::to_string(i));
      EvalWorkspace::PreparedCell& cell =
          workspace.Prepare(static_cast<std::uint64_t>(i), set, cpu,
                            scheduler);
      EXPECT_GT(EvalWorkspace::ApproxBytes(cell), 1u);
      // The fresh entry survives its own insertion's budget pass.
      EXPECT_EQ(cell.key, static_cast<std::uint64_t>(i));
    }
    // The two evictees flowed into the store on the way out.
    EXPECT_EQ(store.AbsorbedCount(), 2u);
    // The survivor still hits.
    const model::TaskSet last = TwoTaskSet("evict-2");
    obs::MetricsShard& shard = metrics.Shard(0);
    (void)shard;
    EvalWorkspace::PreparedCell& again =
        workspace.Prepare(2, last, cpu, scheduler);
    EXPECT_EQ(again.key, 2u);
  }

  std::int64_t evictions = 0;
  double resident_bytes = -1.0;
  for (const obs::AggregatedMetric& m : metrics.Aggregate()) {
    if (m.name == "prepare.evictions") {
      evictions = m.count;
    } else if (m.name == "prepare.resident_bytes") {
      resident_bytes = m.value;
    }
  }
  obs::InstallMetrics(nullptr);
  EXPECT_EQ(evictions, 2);
  EXPECT_GT(resident_bytes, 0.0);
}

// A single entry bigger than the whole byte budget can never be paid for
// by eviction.  The buggy behavior — charge it anyway — flushed every
// smaller resident entry (futile: the budget stayed blown) before the
// while-condition's size floor stopped it.  The fix admits the oversized
// MRU charge-exempt: nothing is evicted, the smaller entries stay hot, and
// prepare.oversized_rejects counts the event.
TEST(SolveStoreEviction, OversizedMruEvictsNothing) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const SchedulerOptions scheduler;

  obs::MetricsRegistry metrics;
  obs::InstallMetrics(&metrics);
  metrics.EnsureShards(1);
  {
    obs::ScopedMetricsShard scoped(&metrics.Shard(0));
    const model::TaskSet small0 = TwoTaskSet("fit-0");
    const model::TaskSet small1 = TwoTaskSet("fit-1");
    const model::TaskSet big = ManyTaskSet("oversized", 32);

    // Measure the three footprints against an unconstrained budget first.
    std::size_t small_bytes = 0;
    std::size_t big_bytes = 0;
    {
      EvalWorkspace probe;
      small_bytes =
          EvalWorkspace::ApproxBytes(probe.Prepare(0, small0, cpu, scheduler));
      small_bytes +=
          EvalWorkspace::ApproxBytes(probe.Prepare(1, small1, cpu, scheduler));
      big_bytes =
          EvalWorkspace::ApproxBytes(probe.Prepare(2, big, cpu, scheduler));
    }
    // Both small entries fit the budget exactly; the big one alone blows it.
    const std::size_t budget = small_bytes;
    ASSERT_GT(big_bytes, budget);

    EvalWorkspace workspace;
    workspace.set_prepared_budget_bytes(budget);
    workspace.Prepare(0, small0, cpu, scheduler);
    workspace.Prepare(1, small1, cpu, scheduler);
    EvalWorkspace::PreparedCell& cell =
        workspace.Prepare(2, big, cpu, scheduler);
    EXPECT_EQ(cell.key, 2u);

    // The small entries must still be resident: re-preparing them hits the
    // cache instead of rebuilding (no new misses below).
    EXPECT_EQ(workspace.Prepare(0, small0, cpu, scheduler).key, 0u);
    EXPECT_EQ(workspace.Prepare(1, small1, cpu, scheduler).key, 1u);
  }

  std::int64_t evictions = -1;
  std::int64_t misses = -1;
  std::int64_t oversized = -1;
  for (const obs::AggregatedMetric& m : metrics.Aggregate()) {
    if (m.name == "prepare.evictions") {
      evictions = m.count;
    } else if (m.name == "prepare.cache_misses") {
      misses = m.count;
    } else if (m.name == "prepare.oversized_rejects") {
      oversized = m.count;
    }
  }
  obs::InstallMetrics(nullptr);
  EXPECT_EQ(evictions, 0);
  // 3 probe inserts + 3 workspace inserts; the two re-Prepares were hits.
  EXPECT_EQ(misses, 6);
  // Exactly the big insert's budget pass saw an oversized MRU.
  EXPECT_EQ(oversized, 1);
}

}  // namespace
}  // namespace dvs::core
