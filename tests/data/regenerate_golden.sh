#!/usr/bin/env bash
# Deliberate regeneration — or verification — of the golden CSV files in
# this directory.
#
# The golden tests (tests/runner_golden_csv_test.cc) byte-compare serially
# produced grid CSVs against:
#
#   golden_smoke_grid.csv     the legacy default-pipeline grid — its bytes
#                             date back to the pre-scenario tree and prove
#                             the old arms stay untouched; regenerate it
#                             ONLY when a default-pipeline output change is
#                             intended, and say so in the commit message;
#   golden_planning_grid.csv  the scenario-conditioned planning-arm grid
#                             (scenario column + acs-scenario/quantile/
#                             mixture rows).
#
# Usage (from the repo root, after building):
#
#   tests/data/regenerate_golden.sh [--check] [build-dir] [gtest-filter]
#
# Defaults: build-dir "build", filter the planning golden only.  To also
# regenerate the legacy golden, pass '*GoldenCsv*' as the filter.
#
# --check runs BOTH golden tests at the scalar SIMD level without touching
# the checked-in files and fails on any byte difference — the CI lane that
# proves the working tree still reproduces its own goldens (a vector-
# dispatch or warm-start default accidentally changing bytes trips here).
set -euo pipefail

check=0
if [[ "${1:-}" == "--check" ]]; then
  check=1
  shift
fi

build_dir="${1:-build}"
filter="${2:-*SerialPlanningGridByteMatchesCheckedInFile*}"

if [[ ! -x "${build_dir}/runner_golden_csv_test" ]]; then
  echo "error: ${build_dir}/runner_golden_csv_test not built" >&2
  exit 1
fi

if [[ "${check}" == 1 ]]; then
  # Verify only: the tests compare, never overwrite.  The scalar pin makes
  # the check meaningful on any hardware — the goldens' bytes are defined
  # at the scalar dispatch level (util/simd.h).
  ACS_SIMD=scalar "${build_dir}/runner_golden_csv_test" \
    --gtest_filter='*GoldenCsv*'
  echo "goldens verified byte-identical"
  exit 0
fi

ACS_REGENERATE_GOLDEN=1 "${build_dir}/runner_golden_csv_test" \
  --gtest_filter="${filter}"
echo "done; review the diff under tests/data/ before committing"
