#!/usr/bin/env bash
# Deliberate regeneration of the golden CSV files in this directory.
#
# The golden tests (tests/runner_golden_csv_test.cc) byte-compare serially
# produced grid CSVs against:
#
#   golden_smoke_grid.csv     the legacy default-pipeline grid — its bytes
#                             date back to the pre-scenario tree and prove
#                             the old arms stay untouched; regenerate it
#                             ONLY when a default-pipeline output change is
#                             intended, and say so in the commit message;
#   golden_planning_grid.csv  the scenario-conditioned planning-arm grid
#                             (scenario column + acs-scenario/quantile/
#                             mixture rows).
#
# Usage (from the repo root, after building):
#
#   tests/data/regenerate_golden.sh [build-dir] [gtest-filter]
#
# Defaults: build-dir "build", filter the planning golden only.  To also
# regenerate the legacy golden, pass '*GoldenCsv*' as the filter.
set -euo pipefail

build_dir="${1:-build}"
filter="${2:-*SerialPlanningGridByteMatchesCheckedInFile*}"

if [[ ! -x "${build_dir}/runner_golden_csv_test" ]]; then
  echo "error: ${build_dir}/runner_golden_csv_test not built" >&2
  exit 1
fi

ACS_REGENERATE_GOLDEN=1 "${build_dir}/runner_golden_csv_test" \
  --gtest_filter="${filter}"
echo "done; review the diff under tests/data/ before committing"
