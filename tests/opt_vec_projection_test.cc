// Tests for dense vector kernels and Euclidean projections.
#include <gtest/gtest.h>

#include "opt/problem.h"
#include "opt/vec.h"
#include "stats/rng.h"
#include "util/error.h"

namespace dvs::opt {
namespace {

TEST(Vec, DotAndNorms) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(Norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(NormInf(b), 6.0);
  EXPECT_THROW(Dot({1.0}, {1.0, 2.0}), util::InvalidArgumentError);
}

TEST(Vec, AxpyScaleSubtract) {
  Vector y{1.0, 1.0};
  Axpy(2.0, {3.0, 4.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
  Scale(0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 3.5);
  const Vector d = Subtract({5.0, 5.0}, y);
  EXPECT_DOUBLE_EQ(d[0], 1.5);
  const Vector s = AddScaled({1.0, 2.0}, 3.0, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(s[0], 4.0);
  EXPECT_DOUBLE_EQ(s[1], 5.0);
}

TEST(SimplexProjection, AlreadyFeasibleIsFixedPoint) {
  std::vector<double> v{0.2, 0.3, 0.5};
  ProjectOntoSimplex(v, 1.0);
  EXPECT_NEAR(v[0], 0.2, 1e-12);
  EXPECT_NEAR(v[1], 0.3, 1e-12);
  EXPECT_NEAR(v[2], 0.5, 1e-12);
}

TEST(SimplexProjection, SumsToTotalAndNonNegative) {
  stats::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v(5);
    for (double& x : v) {
      x = rng.Uniform(-10.0, 10.0);
    }
    const double total = rng.Uniform(0.0, 20.0);
    ProjectOntoSimplex(v, total);
    double sum = 0.0;
    for (double x : v) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, total, 1e-9);
  }
}

TEST(SimplexProjection, KnownSolution) {
  // Projection of (2, 1) onto {x+y = 1, x,y >= 0} is (1, 0).
  std::vector<double> v{2.0, 1.0};
  ProjectOntoSimplex(v, 1.0);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 0.0, 1e-12);
}

TEST(SimplexProjection, SingleElementPinsToTotal) {
  std::vector<double> v{-3.0};
  ProjectOntoSimplex(v, 4.0);
  EXPECT_DOUBLE_EQ(v[0], 4.0);
}

TEST(SimplexProjection, ZeroTotalZeroesEverything) {
  std::vector<double> v{1.0, 2.0, 3.0};
  ProjectOntoSimplex(v, 0.0);
  for (double x : v) {
    EXPECT_NEAR(x, 0.0, 1e-12);
  }
}

TEST(SimplexProjection, IsIdempotent) {
  std::vector<double> v{5.0, -2.0, 0.5, 3.0};
  ProjectOntoSimplex(v, 2.0);
  std::vector<double> again = v;
  ProjectOntoSimplex(again, 2.0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(again[i], v[i], 1e-12);
  }
}

TEST(BoxSimplexSet, ProjectsBoxes) {
  BoxSimplexSet set(3);
  set.SetBounds(0, 0.0, 1.0);
  set.SetBounds(1, -1.0, kNoBound);
  Vector x{5.0, -3.0, 42.0};
  set.Project(x);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -1.0);
  EXPECT_DOUBLE_EQ(x[2], 42.0);  // unbounded
}

TEST(BoxSimplexSet, ProjectsSimplexGroups) {
  BoxSimplexSet set(4);
  set.SetBounds(0, 0.0, 10.0);
  set.AddSimplex({1, 2, 3}, 6.0);
  Vector x{20.0, 1.0, 2.0, 3.0};
  set.Project(x);
  EXPECT_DOUBLE_EQ(x[0], 10.0);
  EXPECT_NEAR(x[1] + x[2] + x[3], 6.0, 1e-9);
}

TEST(BoxSimplexSet, RejectsVariableReuse) {
  BoxSimplexSet set(3);
  set.AddSimplex({0, 1}, 1.0);
  EXPECT_THROW(set.AddSimplex({1, 2}, 1.0), util::InvalidArgumentError);
  EXPECT_THROW(set.SetBounds(0, 0.0, 1.0), util::InvalidArgumentError);
}

TEST(BoxSimplexSet, RejectsBoundedSimplexVariable) {
  BoxSimplexSet set(2);
  set.SetBounds(0, 0.0, 1.0);
  EXPECT_THROW(set.AddSimplex({0, 1}, 1.0), util::InvalidArgumentError);
}

TEST(LinearConstraint, EvaluateAndViolation) {
  LinearConstraint c;
  c.kind = ConstraintKind::kGeZero;
  c.terms = {{0, 1.0}, {1, -1.0}};
  c.constant = -2.0;  // x0 - x1 - 2 >= 0
  EXPECT_DOUBLE_EQ(c.Evaluate({5.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(c.Violation({5.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(c.Violation({1.0, 1.0}), 2.0);

  c.kind = ConstraintKind::kEqZero;
  EXPECT_DOUBLE_EQ(c.Violation({5.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(c.Violation({3.0, 1.0}), 0.0);
}

TEST(LinearConstraintFn, AdapterAccumulatesGradient) {
  LinearConstraint c;
  c.kind = ConstraintKind::kGeZero;
  c.terms = {{0, 2.0}, {2, -3.0}};
  const LinearConstraintFn fn(c);
  Vector grad(3, 1.0);
  fn.AccumulateGradient({0.0, 0.0, 0.0}, 2.0, grad);
  EXPECT_DOUBLE_EQ(grad[0], 5.0);
  EXPECT_DOUBLE_EQ(grad[1], 1.0);
  EXPECT_DOUBLE_EQ(grad[2], -5.0);
}

}  // namespace
}  // namespace dvs::opt
