// End-to-end telemetry contract: the observation-only invariant and the
// artifact formats.
//
// The load-bearing test here is the golden-bytes one: running the exact
// grids behind tests/data/golden_*.csv with the FULL telemetry stack
// installed (metrics registry + trace recorder + convergence recorder)
// must still produce byte-identical CSVs — tracing observes the pipeline,
// it never perturbs it.  The rest pins the artifact formats those runs
// emit: Chrome trace_event JSON with the grid -> cell -> solve nesting and
// cache annotations, valid JSONL convergence records, and the
// "acs.run_manifest/1" schema with its merge error taxonomy (conflict /
// double-merge / missing-shard), which tools/merge_results surfaces.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/convergence.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runner/csv_sink.h"
#include "runner/experiment_grid.h"
#include "runner/run_grid.h"
#include "util/error.h"
#include "util/json.h"
#include "util/simd.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string FreshPath(const std::string& stem, const std::string& ext) {
  return ::testing::TempDir() + stem + "." +
         std::to_string(static_cast<long long>(::getpid())) + ext;
}

model::TaskSet TinyFixedSet(const model::DvsModel& dvs) {
  model::Task a;
  a.name = "a";
  a.period = 10;
  a.wcec = 8.0;
  a.acec = 5.0;
  a.bcec = 2.0;
  model::Task b;
  b.name = "b";
  b.period = 20;
  b.wcec = 12.0;
  b.acec = 8.0;
  b.bcec = 4.0;
  return workload::ScaleToUtilization({a, b}, dvs, 0.6);
}

/// The exact grid behind tests/data/golden_smoke_grid.csv (lockstep with
/// GoldenGrid in runner_golden_csv_test.cc and SmokeGrid in shard_grid).
runner::ExperimentGrid GoldenGrid(const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  gen.bcec_wcec_ratio = 0.3;
  gen.max_sub_instances = 24;

  runner::ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {runner::RandomSource("random-2", gen, 2),
                  runner::FixedSource("tiny-fixed", TinyFixedSet(dvs))};
  grid.sigma_divisors = {6.0, 10.0};
  grid.workload_seeds = {0, 1};
  grid.methods = {"acs", "wcs", "static-vmax"};
  grid.hyper_periods = 10;
  grid.master_seed = 7;
  return grid;
}

/// The grid behind tests/data/golden_planning_grid.csv.
runner::ExperimentGrid GoldenPlanningGrid(const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 3;
  gen.bcec_wcec_ratio = 0.3;
  gen.max_sub_instances = 24;

  runner::ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {runner::RandomSource("random-3", gen, 1),
                  runner::FixedSource("tiny-fixed", TinyFixedSet(dvs))};
  grid.scenarios = {"iid-normal", "heavy-tail", "bimodal"};
  grid.methods = {"acs", "acs-scenario", "acs-quantile", "acs-mixture",
                  "wcs"};
  grid.baseline = "acs";
  grid.planning.calibration_samples = 256;
  grid.planning.mixture_samples = 4;
  grid.hyper_periods = 10;
  grid.master_seed = 11;
  return grid;
}

/// Runs `grid` serially with the full telemetry stack installed and
/// returns the produced CSV bytes.  Artifacts land in the caller's paths.
std::string RunWithTelemetry(const runner::ExperimentGrid& grid,
                             bool scenario_column,
                             MetricsRegistry* metrics,
                             TraceRecorder* trace,
                             const std::string& convergence_path) {
  const std::string csv_path =
      FreshPath(scenario_column ? "telemetry_planning" : "telemetry_smoke",
                ".csv");
  ConvergenceRecorder convergence(convergence_path);
  InstallMetrics(metrics);
  TraceRecorder::Install(trace);
  ConvergenceRecorder::Install(&convergence);
  {
    runner::CsvSink sink(csv_path, scenario_column);
    runner::RunOptions options;
    options.threads = 1;
    options.sink = &sink;
    const runner::GridResult result = runner::RunGrid(grid, options);
    EXPECT_EQ(result.failed_cells, 0u);
  }
  ConvergenceRecorder::Install(nullptr);
  TraceRecorder::Install(nullptr);
  InstallMetrics(nullptr);
  convergence.Flush();
  EXPECT_GT(convergence.records(), 0u);

  const std::string bytes = ReadFile(csv_path);
  std::remove(csv_path.c_str());
  return bytes;
}

/// The tentpole invariant, half one: the legacy golden grid run with
/// metrics + tracing + convergence recording fully on still produces the
/// checked-in bytes.  (runner_golden_csv_test pins the telemetry-off run
/// against the same file, so together they pin on == off == golden.)
TEST(TelemetryGoldenBytes, SmokeGridUnchangedWithFullTelemetryOn) {
  // Goldens are defined at scalar dispatch (see runner_golden_csv_test).
  const util::simd::ScopedLevel scalar(util::simd::Level::kScalar);
  const model::LinearDvsModel cpu = workload::DefaultModel();

  MetricsRegistry metrics;
  metrics.EnsureShards(1);
  TraceRecorder trace;
  const std::string convergence_path =
      FreshPath("telemetry_smoke_convergence", ".jsonl");
  const std::string fresh = RunWithTelemetry(
      GoldenGrid(cpu), /*scenario_column=*/false, &metrics, &trace,
      convergence_path);

  const std::string golden =
      ReadFile(std::string(ACS_TEST_DATA_DIR) + "/golden_smoke_grid.csv");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(fresh, golden)
      << "telemetry must be observation-only: the golden CSV bytes changed "
         "with the metrics/trace/convergence recorders installed";

  // The run actually recorded: cells counted, spans buffered.
  const std::vector<AggregatedMetric> agg = metrics.Aggregate();
  EXPECT_GT(agg[metric::kCellsEvaluated].count, 0);
  EXPECT_GT(trace.event_count(), 0u);

  // Every convergence line is a standalone JSON object with the record
  // schema the plotting scripts key on.
  std::ifstream jsonl(convergence_path);
  ASSERT_TRUE(jsonl.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(jsonl, line)) {
    const util::JsonValue record = util::ParseJson(line);
    ASSERT_TRUE(record.IsObject());
    EXPECT_NE(record.Find("solve"), nullptr);
    EXPECT_NE(record.Find("phase"), nullptr);
    const std::string event = record.StringAt("event");
    if (event == "spg") {
      EXPECT_NE(record.Find("f"), nullptr) << "spg record missing objective";
      EXPECT_NE(record.Find("criterion"), nullptr);
    } else {
      ASSERT_EQ(event, "alm");
      EXPECT_NE(record.Find("penalty"), nullptr);
      EXPECT_NE(record.Find("violation"), nullptr);
    }
    ++lines;
    if (lines >= 500) {
      break;  // format check, not an exhaustive parse of every record
    }
  }
  EXPECT_GT(lines, 0u);
  std::remove(convergence_path.c_str());
}

/// Half two: the planning-arm golden (calibration, warm-link chains and
/// planned-solve caching all instrumented) is also byte-stable.
TEST(TelemetryGoldenBytes, PlanningGridUnchangedWithFullTelemetryOn) {
  const util::simd::ScopedLevel scalar(util::simd::Level::kScalar);
  const model::LinearDvsModel cpu = workload::DefaultModel();

  MetricsRegistry metrics;
  metrics.EnsureShards(1);
  TraceRecorder trace;
  const std::string convergence_path =
      FreshPath("telemetry_planning_convergence", ".jsonl");
  const std::string fresh = RunWithTelemetry(
      GoldenPlanningGrid(cpu), /*scenario_column=*/true, &metrics, &trace,
      convergence_path);
  std::remove(convergence_path.c_str());

  const std::string golden =
      ReadFile(std::string(ACS_TEST_DATA_DIR) + "/golden_planning_grid.csv");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(fresh, golden)
      << "telemetry must be observation-only on the planning arms too "
         "(calibrate / warm-link / planned-solve instrumentation)";

  // The planning instrumentation fired: calibrations ran and the trace
  // contains calibrate + warm-link phases.
  const std::vector<AggregatedMetric> agg = metrics.Aggregate();
  EXPECT_GT(agg[metric::kCalibrations].count, 0);
  std::set<std::string> names;
  for (const TraceEvent& event : trace.Events()) {
    names.insert(event.name);
  }
  EXPECT_TRUE(names.count("calibrate") == 1) << "calibrate span missing";
  EXPECT_TRUE(names.count("planned") == 1) << "planned span missing";
}

/// Sigma-axis neighbor warm starts chain planned solves link by link; each
/// link gets its own "warm-link" span with sigma/link annotations.  (The
/// golden planning grid has a single sigma divisor, so this needs its own
/// grid with a real chain.)
TEST(TraceFormat, WarmLinkSpansAppearUnderNeighborWarmStart) {
  const util::simd::ScopedLevel scalar(util::simd::Level::kScalar);
  const model::LinearDvsModel cpu = workload::DefaultModel();

  runner::ExperimentGrid grid;
  grid.dvs = &cpu;
  grid.sources = {runner::FixedSource("tiny-fixed", TinyFixedSet(cpu))};
  grid.sigma_divisors = {6.0, 10.0};
  grid.scenarios = {"iid-normal"};
  grid.methods = {"acs-scenario"};
  grid.baseline = "acs-scenario";
  grid.planning.calibration_samples = 64;
  grid.hyper_periods = 4;
  grid.master_seed = 3;
  grid.warm_start = core::WarmStartPolicy::kNeighbor;

  TraceRecorder trace;
  TraceRecorder::Install(&trace);
  {
    runner::RunOptions options;
    options.threads = 1;
    const runner::GridResult result = runner::RunGrid(grid, options);
    EXPECT_EQ(result.failed_cells, 0u);
  }
  TraceRecorder::Install(nullptr);

  std::size_t links = 0;
  for (const TraceEvent& event : trace.Events()) {
    if (std::string(event.name) != "warm-link") {
      continue;
    }
    ++links;
    bool has_sigma = false;
    for (const auto& [key, value] : event.args) {
      has_sigma = has_sigma || key == std::string("sigma");
    }
    EXPECT_TRUE(has_sigma) << "warm-link span lacks its sigma annotation";
  }
  // The deepest cell's chain has two links; shallower cells contribute one.
  EXPECT_GE(links, 2u);
}

TEST(TraceFormat, ChromeTraceNestsGridCellSolveWithCacheAnnotations) {
  const util::simd::ScopedLevel scalar(util::simd::Level::kScalar);
  const model::LinearDvsModel cpu = workload::DefaultModel();
  MetricsRegistry metrics;
  metrics.EnsureShards(1);
  TraceRecorder trace;
  const std::string convergence_path =
      FreshPath("trace_format_convergence", ".jsonl");
  RunWithTelemetry(GoldenGrid(cpu), /*scenario_column=*/false, &metrics,
                   &trace, convergence_path);
  std::remove(convergence_path.c_str());

  const util::JsonValue doc = util::ParseJson(trace.RenderChromeTrace(3));
  EXPECT_EQ(doc.StringAt("displayTimeUnit"), "ms");
  const util::JsonValue& events = doc.At("traceEvents");
  ASSERT_TRUE(events.IsArray());
  ASSERT_FALSE(events.array.empty());

  std::set<std::string> names;
  bool saw_metadata = false;
  bool saw_cache_annotation = false;
  for (const util::JsonValue& event : events.array) {
    const std::string ph = event.StringAt("ph");
    EXPECT_EQ(event.NumberAt("pid"), 3.0);
    if (ph == "M") {
      saw_metadata = event.StringAt("name") == "thread_name";
      continue;
    }
    ASSERT_EQ(ph, "X") << "only complete events and metadata are emitted";
    names.insert(event.StringAt("name"));
    EXPECT_GE(event.NumberAt("dur"), 0.0);
    if (const util::JsonValue* args = event.Find("args")) {
      if (const util::JsonValue* cache = args->Find("cache")) {
        saw_cache_annotation = true;
        EXPECT_TRUE(cache->string == "hit" || cache->string == "miss");
      }
    }
  }
  EXPECT_TRUE(saw_metadata) << "thread_name metadata missing";
  EXPECT_TRUE(saw_cache_annotation) << "no cache hit/miss annotations";
  // The span hierarchy the flamegraph shows: grid -> cell -> solve phases.
  for (const char* required : {"grid", "cell", "alm", "wcs", "acs",
                               "simulate"}) {
    EXPECT_EQ(names.count(required), 1u) << required << " span missing";
  }

  // Merging two shard documents re-homes each input to its own pid.
  const std::string shard0 = trace.RenderChromeTrace(0);
  const std::string merged = MergeChromeTraces({shard0, shard0}, {0, 1});
  const util::JsonValue merged_doc = util::ParseJson(merged);
  std::set<double> pids;
  for (const util::JsonValue& event : merged_doc.At("traceEvents").array) {
    pids.insert(event.NumberAt("pid"));
  }
  EXPECT_EQ(pids, (std::set<double>{0.0, 1.0}));
  EXPECT_THROW(MergeChromeTraces({"not json"}, {0}), util::Error);
}

RunManifest ShardManifest(std::size_t index, std::size_t count) {
  RunManifest manifest;
  manifest.tool = "telemetry_test";
  manifest.master_seed = 7;
  manifest.threads = 2;
  manifest.shard_index = index;
  manifest.shard_count = count;
  manifest.wall_ms = 100.0 * static_cast<double>(index + 1);
  manifest.config = {{"grid", "smoke"}, {"warm_start", "off"}};
  return manifest;
}

TEST(Manifest, RenderMatchesSchema) {
  MetricsRegistry metrics;
  metrics.EnsureShards(1);
  metrics.Shard(0).Count(metric::kCellsEvaluated, 6);
  metrics.Shard(0).SetGauge(metric::kThreads, 2.0);
  metrics.Shard(0).Observe(metric::kCellWallUs, 250.0);

  const util::JsonValue doc =
      util::ParseJson(RenderManifest(ShardManifest(0, 2), &metrics));
  EXPECT_EQ(doc.StringAt("schema"), "acs.run_manifest/1");
  EXPECT_EQ(doc.StringAt("tool"), "telemetry_test");

  const util::JsonValue& build = doc.At("build");
  EXPECT_FALSE(build.StringAt("git_sha").empty());
  EXPECT_FALSE(build.StringAt("compiler").empty());
  EXPECT_FALSE(build.StringAt("simd").empty());

  const util::JsonValue& run = doc.At("run");
  EXPECT_DOUBLE_EQ(run.NumberAt("master_seed"), 7.0);
  EXPECT_DOUBLE_EQ(run.NumberAt("threads"), 2.0);
  EXPECT_DOUBLE_EQ(run.NumberAt("shard_count"), 2.0);
  EXPECT_DOUBLE_EQ(run.NumberAt("wall_ms"), 100.0);

  ASSERT_TRUE(doc.At("shards").IsArray());
  ASSERT_EQ(doc.At("shards").array.size(), 1u);
  EXPECT_DOUBLE_EQ(doc.At("shards").array[0].number, 0.0);
  EXPECT_EQ(doc.At("config").StringAt("grid"), "smoke");

  const util::JsonValue& counters = doc.At("metrics").At("counters");
  EXPECT_DOUBLE_EQ(counters.NumberAt("grid.cells_evaluated"), 6.0);
  const util::JsonValue& hist =
      doc.At("metrics").At("histograms").At("cell.wall_us");
  EXPECT_DOUBLE_EQ(hist.NumberAt("count"), 1.0);
  EXPECT_DOUBLE_EQ(hist.NumberAt("sum"), 250.0);
  ASSERT_TRUE(hist.At("buckets").IsArray());
  EXPECT_EQ(hist.At("buckets").array.size(),
            hist.At("bounds").array.size() + 1);
}

TEST(Manifest, MergeSumsCountersAndWallAcrossShards) {
  MetricsRegistry m0;
  m0.EnsureShards(1);
  m0.Shard(0).Count(metric::kCellsEvaluated, 4);
  m0.Shard(0).SetGauge(metric::kThreads, 2.0);
  m0.Shard(0).Observe(metric::kCellWallUs, 50.0);
  MetricsRegistry m1;
  m1.EnsureShards(1);
  m1.Shard(0).Count(metric::kCellsEvaluated, 8);
  m1.Shard(0).SetGauge(metric::kThreads, 4.0);
  m1.Shard(0).Observe(metric::kCellWallUs, 5e6);

  // Shard order must not matter: merge_results takes paths in any order.
  const std::string merged =
      MergeManifests({RenderManifest(ShardManifest(1, 2), &m1),
                      RenderManifest(ShardManifest(0, 2), &m0)});
  const util::JsonValue doc = util::ParseJson(merged);
  EXPECT_EQ(doc.StringAt("schema"), "acs.run_manifest/1");
  ASSERT_EQ(doc.At("shards").array.size(), 2u);
  EXPECT_DOUBLE_EQ(doc.At("shards").array[0].number, 0.0);
  EXPECT_DOUBLE_EQ(doc.At("shards").array[1].number, 1.0);
  EXPECT_DOUBLE_EQ(doc.At("run").NumberAt("wall_ms"), 100.0 + 200.0);
  EXPECT_DOUBLE_EQ(
      doc.At("metrics").At("counters").NumberAt("grid.cells_evaluated"),
      12.0);
  // Gauges take the max over shards.
  EXPECT_DOUBLE_EQ(doc.At("metrics").At("gauges").NumberAt("run.threads"),
                   4.0);
  // Histogram buckets sum bucket-wise, min/max fold.
  const util::JsonValue& hist =
      doc.At("metrics").At("histograms").At("cell.wall_us");
  EXPECT_DOUBLE_EQ(hist.NumberAt("count"), 2.0);
  EXPECT_DOUBLE_EQ(hist.NumberAt("min"), 50.0);
  EXPECT_DOUBLE_EQ(hist.NumberAt("max"), 5e6);

  // A merged document is itself schema-valid and re-mergeable as a whole
  // (it covers all shards), so double-merging it with a shard is caught:
  EXPECT_THROW(MergeManifests({merged, RenderManifest(ShardManifest(0, 2),
                                                      &m0)}),
               util::Error);
}

TEST(Manifest, MergeErrorTaxonomy) {
  const std::string s0 = RenderManifest(ShardManifest(0, 2), nullptr);
  const std::string s1 = RenderManifest(ShardManifest(1, 2), nullptr);

  const auto message_of = [](const std::vector<std::string>& texts) {
    try {
      MergeManifests(texts);
    } catch (const util::Error& error) {
      return std::string(error.what());
    }
    return std::string();
  };

  // Double merge: the same shard twice.
  EXPECT_NE(message_of({s0, s0}).find("double merge"), std::string::npos);
  // Missing shard: coverage has a gap.
  EXPECT_NE(message_of({s0}).find("missing shard"), std::string::npos);

  // Conflicts: differing tool / seed / config are all hard errors.
  RunManifest other_tool = ShardManifest(1, 2);
  other_tool.tool = "different_tool";
  EXPECT_NE(
      message_of({s0, RenderManifest(other_tool, nullptr)}).find("conflict"),
      std::string::npos);

  RunManifest other_seed = ShardManifest(1, 2);
  other_seed.master_seed = 8;
  EXPECT_NE(
      message_of({s0, RenderManifest(other_seed, nullptr)}).find(
          "master_seed"),
      std::string::npos);

  RunManifest other_config = ShardManifest(1, 2);
  other_config.config.emplace_back("extra", "key");
  EXPECT_NE(
      message_of({s0, RenderManifest(other_config, nullptr)}).find(
          "configs differ"),
      std::string::npos);

  // Unsupported schema and empty input.
  EXPECT_THROW(MergeManifests({R"({"schema": "acs.run_manifest/999"})"}),
               util::Error);
  EXPECT_THROW(MergeManifests({}), util::Error);
}

TEST(Manifest, WriteManifestCreatesParseableFile) {
  const std::string path = FreshPath("manifest_write", ".json");
  WriteManifest(path, ShardManifest(0, 1), nullptr);
  const util::JsonValue doc = util::ParseJson(ReadFile(path));
  EXPECT_EQ(doc.StringAt("schema"), "acs.run_manifest/1");
  std::remove(path.c_str());
  EXPECT_THROW(
      WriteManifest("/nonexistent-dir/manifest.json", ShardManifest(0, 1),
                    nullptr),
      util::Error);
}

}  // namespace
}  // namespace dvs::obs
