// obs::MetricsRegistry contract tests.
//
// Pins the builtin id -> name table (persisted manifests compare these
// names across runs), the deterministic Aggregate fold (identical charges
// split across 1 vs 4 shards aggregate identically), histogram bucket-edge
// semantics, and the one-writer-per-shard threading model — the concurrent
// test runs real threads, one shard each, and must come out clean under
// TSan because shards share no mutable state.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/error.h"

namespace dvs::obs {
namespace {

TEST(MetricsRegistry, BuiltinNamesArePinnedInIdOrder) {
  const MetricsRegistry registry;
  const std::vector<std::string> expected = {
      "grid.cells_evaluated", "grid.cells_failed",
      "grid.cells_skipped",   "solve.wcs_solves",
      "solve.acs_solves",     "solve.planned_solves",
      "solve.cache_hits",     "prepare.cache_hits",
      "prepare.cache_misses", "calibrate.runs",
      "calibrate.cache_hits", "solver.outer_iterations",
      "solver.inner_iterations", "solver.evaluations",
      "sim.deadline_misses",  "solve.fallbacks",
      "run.threads",          "run.shard_count",
      "cell.wall_us",         "solve.wall_us",
      "prepare.evictions",    "prepare.resident_bytes",
      "persist.cache_hits",   "persist.cache_misses",
      "persist.verify_rejects", "persist.write_backs",
      "family.steals",        "family.count",
      "family.cells_per_worker", "drift.replans",
      "online.dp_dispatches", "prepare.oversized_rejects",
      "dpm.sleeps",           "dpm.migrations",
      "dpm.sleep_energy",
  };
  ASSERT_EQ(expected.size(), metric::kBuiltinCount);
  ASSERT_EQ(registry.MetricCount(), metric::kBuiltinCount);
  for (MetricId id = 0; id < metric::kBuiltinCount; ++id) {
    EXPECT_EQ(registry.MetricName(id), expected[id]) << "id " << id;
  }
}

TEST(MetricsRegistry, BuiltinKindsMatchTheIdTable) {
  MetricsRegistry registry;
  const std::vector<AggregatedMetric> agg = registry.Aggregate();
  ASSERT_EQ(agg.size(), metric::kBuiltinCount);
  EXPECT_EQ(agg[metric::kCellsEvaluated].kind, MetricKind::kCounter);
  EXPECT_EQ(agg[metric::kThreads].kind, MetricKind::kGauge);
  EXPECT_EQ(agg[metric::kShardCount].kind, MetricKind::kGauge);
  EXPECT_EQ(agg[metric::kCellWallUs].kind, MetricKind::kHistogram);
  EXPECT_EQ(agg[metric::kSolveWallUs].kind, MetricKind::kHistogram);
  EXPECT_EQ(agg[metric::kPrepareEvictions].kind, MetricKind::kCounter);
  EXPECT_EQ(agg[metric::kPreparedBytes].kind, MetricKind::kGauge);
  EXPECT_EQ(agg[metric::kPersistHits].kind, MetricKind::kCounter);
  EXPECT_EQ(agg[metric::kPersistMisses].kind, MetricKind::kCounter);
  EXPECT_EQ(agg[metric::kPersistRejects].kind, MetricKind::kCounter);
  EXPECT_EQ(agg[metric::kPersistWriteBacks].kind, MetricKind::kCounter);
  EXPECT_EQ(agg[metric::kFamilySteals].kind, MetricKind::kCounter);
  EXPECT_EQ(agg[metric::kFamilyCount].kind, MetricKind::kGauge);
  EXPECT_EQ(agg[metric::kFamilyCellsPerWorker].kind, MetricKind::kHistogram);
  EXPECT_EQ(agg[metric::kDriftReplans].kind, MetricKind::kCounter);
  EXPECT_EQ(agg[metric::kOnlineDpDispatches].kind, MetricKind::kCounter);
  EXPECT_EQ(agg[metric::kPrepareOversized].kind, MetricKind::kCounter);
  EXPECT_EQ(agg[metric::kDpmSleeps].kind, MetricKind::kCounter);
  EXPECT_EQ(agg[metric::kDpmMigrations].kind, MetricKind::kCounter);
  EXPECT_EQ(agg[metric::kDpmSleepEnergy].kind, MetricKind::kHistogram);
}

/// The determinism invariant: the same set of charges, however they are
/// distributed over shards, aggregates to the same totals.  This is what
/// makes manifest metrics comparable between a 1-thread and a 4-thread run
/// when the charges themselves are result-driven.
TEST(MetricsRegistry, AggregationIsShardCountInvariant) {
  const auto charge = [](MetricsShard& shard, int i) {
    shard.Count(metric::kCellsEvaluated);
    shard.Count(metric::kSolverInner, 10 + i);
    shard.Observe(metric::kCellWallUs, 50.0 * (i + 1));
  };

  MetricsRegistry serial;
  serial.EnsureShards(1);
  for (int i = 0; i < 8; ++i) {
    charge(serial.Shard(0), i);
  }

  MetricsRegistry sharded;
  sharded.EnsureShards(4);
  for (int i = 0; i < 8; ++i) {
    charge(sharded.Shard(static_cast<std::size_t>(i) % 4), i);
  }

  const std::vector<AggregatedMetric> a = serial.Aggregate();
  const std::vector<AggregatedMetric> b = sharded.Aggregate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a[id].count, b[id].count) << a[id].name;
    EXPECT_DOUBLE_EQ(a[id].value, b[id].value) << a[id].name;
    EXPECT_DOUBLE_EQ(a[id].min, b[id].min) << a[id].name;
    EXPECT_DOUBLE_EQ(a[id].max, b[id].max) << a[id].name;
    EXPECT_EQ(a[id].buckets, b[id].buckets) << a[id].name;
  }
  EXPECT_EQ(a[metric::kCellsEvaluated].count, 8);
  EXPECT_EQ(a[metric::kSolverInner].count, 8 * 10 + (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(MetricsRegistry, HistogramBucketEdges) {
  // Builtin wall histograms use bounds {100, 1e3, 1e4, 1e5, 1e6, 1e7}:
  // a value lands in the first bucket with v <= bound, overflow last.
  MetricsRegistry registry;
  registry.EnsureShards(1);
  MetricsShard& shard = registry.Shard(0);
  shard.Observe(metric::kCellWallUs, 0.0);     // <= 100 -> bucket 0
  shard.Observe(metric::kCellWallUs, 100.0);   // edge inclusive -> bucket 0
  shard.Observe(metric::kCellWallUs, 100.5);   // -> bucket 1
  shard.Observe(metric::kCellWallUs, 1e3);     // edge -> bucket 1
  shard.Observe(metric::kCellWallUs, 5e6);     // -> bucket 5
  shard.Observe(metric::kCellWallUs, 2e7);     // past last bound -> overflow

  const AggregatedMetric hist = registry.Aggregate()[metric::kCellWallUs];
  ASSERT_EQ(hist.bounds.size(), 6u);
  ASSERT_EQ(hist.buckets.size(), 7u);
  EXPECT_EQ(hist.buckets, (std::vector<std::int64_t>{2, 2, 0, 0, 0, 1, 1}));
  EXPECT_EQ(hist.count, 6);
  EXPECT_DOUBLE_EQ(hist.min, 0.0);
  EXPECT_DOUBLE_EQ(hist.max, 2e7);
  EXPECT_DOUBLE_EQ(hist.value, 0.0 + 100.0 + 100.5 + 1e3 + 5e6 + 2e7);
}

TEST(MetricsRegistry, GaugeAggregatesMaxOverSetShardsOnly) {
  MetricsRegistry registry;
  registry.EnsureShards(3);
  registry.Shard(0).SetGauge(metric::kThreads, 4.0);
  registry.Shard(2).SetGauge(metric::kThreads, 2.0);
  // Shard 1 never sets the gauge; its default 0 must not participate —
  // and negative gauges must not be "beaten" by an unset shard's zero.
  registry.Shard(0).SetGauge(metric::kShardCount, -3.0);

  const std::vector<AggregatedMetric> agg = registry.Aggregate();
  EXPECT_DOUBLE_EQ(agg[metric::kThreads].value, 4.0);
  EXPECT_DOUBLE_EQ(agg[metric::kShardCount].value, -3.0);
}

TEST(MetricsRegistry, CustomMetricsAppendAfterBuiltins) {
  MetricsRegistry registry;
  const MetricId retries = registry.AddCounter("custom.retries");
  const MetricId depth = registry.AddHistogram("custom.depth", {1.0, 2.0});
  EXPECT_EQ(retries, metric::kBuiltinCount);
  EXPECT_EQ(depth, metric::kBuiltinCount + 1);
  registry.EnsureShards(1);
  registry.Shard(0).Count(retries, 3);
  registry.Shard(0).Observe(depth, 1.5);
  const std::vector<AggregatedMetric> agg = registry.Aggregate();
  ASSERT_EQ(agg.size(), metric::kBuiltinCount + 2);
  EXPECT_EQ(agg[retries].name, "custom.retries");
  EXPECT_EQ(agg[retries].count, 3);
  EXPECT_EQ(agg[depth].buckets, (std::vector<std::int64_t>{0, 1, 0}));
}

TEST(MetricsRegistry, HistogramBoundsMustStrictlyIncrease) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.AddHistogram("bad", {1.0, 1.0}), util::Error);
  EXPECT_THROW(registry.AddHistogram("bad", {2.0, 1.0}), util::Error);
}

TEST(MetricsRegistry, ResetZeroesEveryShard) {
  MetricsRegistry registry;
  registry.EnsureShards(2);
  registry.Shard(0).Count(metric::kCellsEvaluated, 5);
  registry.Shard(1).SetGauge(metric::kThreads, 8.0);
  registry.Shard(1).Observe(metric::kCellWallUs, 42.0);
  registry.Reset();
  const std::vector<AggregatedMetric> agg = registry.Aggregate();
  EXPECT_EQ(agg[metric::kCellsEvaluated].count, 0);
  EXPECT_DOUBLE_EQ(agg[metric::kThreads].value, 0.0);
  EXPECT_EQ(agg[metric::kCellWallUs].count, 0);
  for (std::int64_t bucket : agg[metric::kCellWallUs].buckets) {
    EXPECT_EQ(bucket, 0);
  }
}

/// The RunGrid threading model in miniature: N real threads, each scoping
/// its own shard and hammering counters/histograms concurrently.  Shards
/// share no mutable state, so this is TSan-clean by construction — run the
/// suite under -fsanitize=thread to enforce it.
TEST(MetricsRegistry, ConcurrentPerShardWritesAggregateExactly) {
  constexpr int kThreads = 4;
  constexpr int kIterations = 10000;
  MetricsRegistry registry;
  registry.EnsureShards(kThreads);
  InstallMetrics(&registry);

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      const ScopedMetricsShard scope(&registry.Shard(static_cast<std::size_t>(t)));
      for (int i = 0; i < kIterations; ++i) {
        // Through the free helpers, exactly like instrumented call sites.
        Count(metric::kSolverInner, 2);
        Observe(metric::kSolveWallUs, static_cast<double>(i % 7) * 500.0);
      }
      SetGauge(metric::kThreads, static_cast<double>(t + 1));
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  InstallMetrics(nullptr);

  const std::vector<AggregatedMetric> agg = registry.Aggregate();
  EXPECT_EQ(agg[metric::kSolverInner].count,
            static_cast<std::int64_t>(kThreads) * kIterations * 2);
  EXPECT_EQ(agg[metric::kSolveWallUs].count,
            static_cast<std::int64_t>(kThreads) * kIterations);
  EXPECT_DOUBLE_EQ(agg[metric::kThreads].value, kThreads);
}

TEST(MetricsFreeHelpers, NoOpWithoutAScopedShard) {
  // No shard scoped on this thread: the helpers must be safe no-ops (the
  // telemetry-off fast path every instrumented call site rides).
  ASSERT_EQ(ActiveShard(), nullptr);
  Count(metric::kCellsEvaluated);
  SetGauge(metric::kThreads, 3.0);
  Observe(metric::kCellWallUs, 1.0);
  { ScopedWallTimer timer(metric::kSolveWallUs); }

  MetricsRegistry registry;
  registry.EnsureShards(1);
  {
    const ScopedMetricsShard scope(&registry.Shard(0));
    EXPECT_EQ(ActiveShard(), &registry.Shard(0));
    { ScopedWallTimer timer(metric::kSolveWallUs); }
  }
  EXPECT_EQ(ActiveShard(), nullptr);
  // The timer observed exactly one (non-negative) duration while scoped.
  const AggregatedMetric hist = registry.Aggregate()[metric::kSolveWallUs];
  EXPECT_EQ(hist.count, 1);
  EXPECT_GE(hist.min, 0.0);
}

TEST(MetricsRegistry, ScopedShardsNest) {
  MetricsRegistry registry;
  registry.EnsureShards(2);
  const ScopedMetricsShard outer(&registry.Shard(0));
  {
    const ScopedMetricsShard inner(&registry.Shard(1));
    Count(metric::kCellsEvaluated);
  }
  Count(metric::kCellsFailed);
  const std::vector<AggregatedMetric> agg = registry.Aggregate();
  EXPECT_EQ(agg[metric::kCellsEvaluated].count, 1);
  EXPECT_EQ(agg[metric::kCellsFailed].count, 1);
}

}  // namespace
}  // namespace dvs::obs
