// Tests for the workload library: presets, random generator, CNC, GAP and
// the motivational example.
#include <gtest/gtest.h>

#include "fps/expansion.h"
#include "sim/engine.h"
#include "stats/rng.h"
#include "util/error.h"
#include "workload/cnc.h"
#include "workload/gap.h"
#include "workload/motivation.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::workload {
namespace {

TEST(Presets, DefaultModelParameters) {
  const model::LinearDvsModel cpu = DefaultModel();
  EXPECT_DOUBLE_EQ(cpu.vmin(), 0.5);
  EXPECT_DOUBLE_EQ(cpu.vmax(), 4.0);
  EXPECT_DOUBLE_EQ(cpu.MaxSpeed(), 4.0);
}

TEST(Presets, ApplyBcecRatio) {
  model::Task t;
  t.wcec = 100.0;
  ApplyBcecRatio(t, 0.1);
  EXPECT_DOUBLE_EQ(t.bcec, 10.0);
  EXPECT_DOUBLE_EQ(t.acec, 55.0);
  ApplyBcecRatio(t, 1.0);
  EXPECT_DOUBLE_EQ(t.bcec, 100.0);
  EXPECT_DOUBLE_EQ(t.acec, 100.0);
  EXPECT_THROW(ApplyBcecRatio(t, 1.5), util::InvalidArgumentError);
}

TEST(Presets, ScaleToUtilizationHitsTarget) {
  const model::LinearDvsModel cpu = DefaultModel();
  model::Task t;
  t.name = "t";
  t.period = 10;
  t.wcec = 4.0;
  ApplyBcecRatio(t, 0.5);
  const model::TaskSet set = ScaleToUtilization({t, t}, cpu, 0.7);
  EXPECT_NEAR(set.Utilization(cpu), 0.7, 1e-12);
  // Targets >= 1 are legal multi-core fleet demands (src/mp).
  const model::TaskSet fleet = ScaleToUtilization({t, t}, cpu, 1.5);
  EXPECT_NEAR(fleet.Utilization(cpu), 1.5, 1e-12);
  EXPECT_THROW(ScaleToUtilization({t}, cpu, 0.0),
               util::InvalidArgumentError);
}

TEST(RandomTaskSet, RespectsAllConstraints) {
  const model::LinearDvsModel cpu = DefaultModel();
  stats::Rng rng(1);
  for (int n : {2, 6, 10}) {
    RandomTaskSetOptions options;
    options.num_tasks = n;
    options.bcec_wcec_ratio = 0.1;
    const model::TaskSet set = GenerateRandomTaskSet(options, cpu, rng);
    EXPECT_EQ(static_cast<int>(set.size()), n);
    EXPECT_NEAR(set.Utilization(cpu), 0.7, 1e-9);
    EXPECT_LE(set.hyper_period(), 2000);
    for (const model::Task& t : set.tasks()) {
      EXPECT_NEAR(t.bcec / t.wcec, 0.1, 1e-9);
      EXPECT_NEAR(t.acec, 0.5 * (t.bcec + t.wcec), 1e-9);
      EXPECT_GE(t.period, 10);
      EXPECT_LE(t.period, 1000);
    }
    const fps::FullyPreemptiveSchedule expansion(set);
    EXPECT_LE(expansion.sub_count(), options.max_sub_instances);
    EXPECT_TRUE(sim::IsRmSchedulable(expansion, cpu));
  }
}

TEST(RandomTaskSet, PeriodsComeFromTheCandidateSet) {
  const model::LinearDvsModel cpu = DefaultModel();
  stats::Rng rng(2);
  RandomTaskSetOptions options;
  options.num_tasks = 8;
  const model::TaskSet set = GenerateRandomTaskSet(options, cpu, rng);
  const auto& candidates = CandidatePeriods();
  for (const model::Task& t : set.tasks()) {
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), t.period),
              candidates.end());
  }
}

TEST(RandomTaskSet, DeterministicPerRngState) {
  const model::LinearDvsModel cpu = DefaultModel();
  RandomTaskSetOptions options;
  options.num_tasks = 5;
  stats::Rng a(77);
  stats::Rng b(77);
  const model::TaskSet sa = GenerateRandomTaskSet(options, cpu, a);
  const model::TaskSet sb = GenerateRandomTaskSet(options, cpu, b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa.task(i).period, sb.task(i).period);
    EXPECT_DOUBLE_EQ(sa.task(i).wcec, sb.task(i).wcec);
  }
}

TEST(Cnc, StructureMatchesReconstruction) {
  const model::LinearDvsModel cpu = DefaultModel();
  CncOptions options;
  options.bcec_wcec_ratio = 0.5;
  const model::TaskSet set = CncTaskSet(options, cpu);
  EXPECT_EQ(set.size(), 8u);
  EXPECT_EQ(set.hyper_period(), 4800);
  EXPECT_NEAR(set.Utilization(cpu), 0.7, 1e-9);
  const fps::FullyPreemptiveSchedule expansion(set);
  EXPECT_EQ(expansion.sub_count(), 64u);
  EXPECT_TRUE(sim::IsRmSchedulable(expansion, cpu));
}

TEST(Gap, StructureMatchesReconstruction) {
  const model::LinearDvsModel cpu = DefaultModel();
  GapOptions options;
  options.bcec_wcec_ratio = 0.5;
  const model::TaskSet set = GapTaskSet(options, cpu);
  EXPECT_EQ(set.size(), 9u);
  EXPECT_EQ(set.hyper_period(), 1000);
  EXPECT_NEAR(set.Utilization(cpu), 0.7, 1e-9);
  const fps::FullyPreemptiveSchedule expansion(set);
  EXPECT_LE(expansion.sub_count(), 1000u);  // the paper's cap
  EXPECT_TRUE(sim::IsRmSchedulable(expansion, cpu));
}

TEST(Cnc, RatioSweepKeepsWcecFixed) {
  const model::LinearDvsModel cpu = DefaultModel();
  CncOptions a;
  a.bcec_wcec_ratio = 0.1;
  CncOptions b;
  b.bcec_wcec_ratio = 0.9;
  const model::TaskSet sa = CncTaskSet(a, cpu);
  const model::TaskSet sb = CncTaskSet(b, cpu);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_NEAR(sa.task(i).wcec, sb.task(i).wcec, 1e-9);
    EXPECT_LT(sa.task(i).acec, sb.task(i).acec);
  }
}

TEST(Motivation, ReconstructionInvariants) {
  const model::TaskSet set = MotivationTaskSet();
  const model::LinearDvsModel cpu = MotivationModel();
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.hyper_period(), 20);
  for (const model::Task& t : set.tasks()) {
    EXPECT_DOUBLE_EQ(t.wcec, 20.0e6);
    EXPECT_DOUBLE_EQ(t.acec, 10.0e6);
    // 20 V*ms of demand: at 2 V a task takes 10 ms.
    EXPECT_NEAR(t.wcec / cpu.SpeedAt(2.0), 10.0, 1e-9);
  }
  // The WCEC-optimal uniform schedule runs at 3 V: 3 tasks x 20/3 ms.
  EXPECT_NEAR(set.task(0).wcec / cpu.SpeedAt(3.0), 20.0 / 3.0, 1e-9);
  // Worst-case utilisation at Vmax: 60/80 = 0.75.
  EXPECT_NEAR(set.Utilization(cpu), 0.75, 1e-12);
}

TEST(Motivation, EndTimeHelpers) {
  const auto wcs = MotivationWcsEndTimes();
  const auto acs = MotivationAcsEndTimes();
  ASSERT_EQ(wcs.size(), 3u);
  ASSERT_EQ(acs.size(), 3u);
  EXPECT_NEAR(wcs[0], 6.667, 1e-3);
  EXPECT_DOUBLE_EQ(acs[0], 10.0);
  EXPECT_DOUBLE_EQ(acs[2], wcs[2]);  // both end at the frame boundary
}

}  // namespace
}  // namespace dvs::workload
