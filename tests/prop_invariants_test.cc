// Property-based invariant harness: randomized task sets x every registered
// schedule method x every registered execution-time scenario.
//
// Three invariant families, checked on deterministic seeded draws (so a
// violation is an exact regression, not a flaky statistical event):
//
//   (a) safety     — every method's offline schedule passes the independent
//                    VerifyWorstCase audit, and its simulation under every
//                    scenario finishes with zero deadline misses (the
//                    [BCEC, WCEC] clamp keeps the worst-case envelope, so
//                    no stochastic process may create a miss);
//   (b) dominance  — on paired draws (identical task set, scenario and
//                    seed), the partitioned-ACS fleet consumes no more
//                    energy than the partitioned-WCS fleet;
//   (c) bounds     — measured energy sits between the physical floor
//                    (every instance executes at least BCEC cycles, and no
//                    cycle is cheaper than one at Vmin) and the paired
//                    static-vmax ceiling (the same realised cycles all at
//                    Vmax, which convex DVS energy can only beat).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/api.h"
#include "dpm/dpm.h"
#include "dpm/reallocate.h"
#include "fps/expansion.h"
#include "mp/fleet.h"
#include "mp/partitioner.h"
#include "sim/engine.h"
#include "sim/static_schedule.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"
#include "workload/scenario.h"

namespace dvs {
namespace {

/// Small randomized sets keep the per-method NLP solves test-sized while
/// still varying task count, flexibility ratio and the drawn periods.
std::vector<model::TaskSet> PropertySets(const model::DvsModel& dvs) {
  std::vector<model::TaskSet> sets;
  const struct {
    int tasks;
    double ratio;
    std::uint64_t seed;
  } specs[] = {{3, 0.1, 101}, {4, 0.3, 202}, {4, 0.5, 303}};
  for (const auto& spec : specs) {
    workload::RandomTaskSetOptions gen;
    gen.num_tasks = spec.tasks;
    gen.bcec_wcec_ratio = spec.ratio;
    gen.max_sub_instances = 60;
    stats::Rng rng(spec.seed);
    sets.push_back(workload::GenerateRandomTaskSet(gen, dvs, rng));
  }
  return sets;
}

core::ExperimentOptions PropertyOptions() {
  core::ExperimentOptions options;
  options.hyper_periods = 20;
  options.seed = 77;
  // Test-sized calibration for the scenario-conditioned planning arms; the
  // invariants below are exact whatever the sample count.
  options.planning.calibration_samples = 512;
  options.planning.mixture_samples = 4;
  return options;
}

/// Energy floor: every instance executes at least its BCEC cycles, and no
/// cycle costs less than one cycle at Vmin.
double VminBcecFloor(const model::TaskSet& set, const model::DvsModel& dvs) {
  double bcec_cycles = 0.0;
  for (model::TaskIndex i = 0; i < set.size(); ++i) {
    bcec_cycles +=
        static_cast<double>(set.InstanceCount(i)) * set.task(i).bcec;
  }
  return dvs.Energy(dvs.vmin(), bcec_cycles);
}

// (a) + (c): schedule safety and energy bounds, per method x scenario.
TEST(PropInvariants, EveryMethodEveryScenarioSafeAndBounded) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const core::MethodRegistry& methods = core::MethodRegistry::Builtin();
  const workload::ScenarioRegistry& scenarios =
      workload::ScenarioRegistry::Builtin();

  const core::ExperimentOptions base = PropertyOptions();
  for (const model::TaskSet& set : PropertySets(cpu)) {
    const fps::FullyPreemptiveSchedule fps(set);
    // `base` outlives the context: MethodContext keeps a pointer to the
    // scheduler options.
    core::MethodContext context(fps, cpu, base.scheduler);
    const double floor = VminBcecFloor(set, cpu);

    for (const std::string& scenario_name : scenarios.Names()) {
      core::ExperimentOptions options = PropertyOptions();
      options.scenario = &scenarios.Get(scenario_name);

      // The paired ceiling: the identical realised cycles, all at Vmax.
      const core::MethodOutcome ceiling =
          EvaluateMethod(methods.Get("static-vmax"), context, options);
      EXPECT_EQ(ceiling.deadline_misses, 0)
          << "static-vmax under " << scenario_name;

      for (const std::string& method_name : methods.Names()) {
        const core::ScheduleMethod& method = methods.Get(method_name);

        // (a) the offline product passes the independent worst-case audit.
        // The scenario-conditioned arms (acs-scenario / acs-quantile /
        // acs-mixture) read the scenario and planning knobs at Plan()
        // time, so the direct Plan() call needs the experiment attached —
        // and their schedules must pass the same audit: planning points
        // are clamped to [BCEC, WCEC], so no calibration can widen the
        // worst-case envelope.
        context.AttachExperiment(options);
        const core::MethodPlan plan = method.Plan(context);
        const sim::FeasibilityReport audit =
            sim::VerifyWorstCase(fps, plan.schedule, cpu);
        ASSERT_TRUE(audit.feasible)
            << method_name << " on " << set.Describe() << ": "
            << audit.detail;

        // (a) zero deadline misses under every stochastic process.
        const core::MethodOutcome outcome =
            EvaluateMethod(method, context, options);
        EXPECT_EQ(outcome.deadline_misses, 0)
            << method_name << " under " << scenario_name;

        // (c) floor <= measured <= paired static-vmax ceiling.
        EXPECT_GE(outcome.measured_energy, floor * (1.0 - 1e-9))
            << method_name << " under " << scenario_name;
        EXPECT_LE(outcome.measured_energy,
                  ceiling.measured_energy * (1.0 + 1e-9))
            << method_name << " under " << scenario_name;
      }
    }
  }
}

// (b): partitioned-ACS never consumes more fleet energy than
// partitioned-WCS on paired draws, for every scenario.
//
// Scope note: unlike (a) and (c) this is not a theorem — a process whose
// realised load sits well above the ACEC plan could legitimately make
// ACS's slow prefix plus catch-up cost more than WCS on some draw.  On
// the pinned PropertySets seeds and the current built-ins (all of whose
// realised means sit at or below the window's ACEC region) the dominance
// holds exactly, so this is a deterministic regression check in the
// spirit of mp_fleet_test.  If you register a heavier-than-ACEC built-in
// and this fires, re-scope the assertion to mean-<=-ACEC scenarios rather
// than weakening the paper's headline inequality for the existing ones.
TEST(PropInvariants, AcsFleetNeverAboveWcsFleetUnderAnyScenario) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const core::MethodRegistry& methods = core::MethodRegistry::Builtin();
  const std::vector<const core::ScheduleMethod*> arms = {
      &methods.Get("acs"), &methods.Get("wcs")};
  const mp::Partitioner& ffd =
      mp::PartitionerRegistry::Builtin().Get("ffd");

  for (const model::TaskSet& set : PropertySets(cpu)) {
    for (const std::string& scenario_name :
         workload::ScenarioRegistry::Builtin().Names()) {
      core::ExperimentOptions options = PropertyOptions();
      options.scenario =
          &workload::ScenarioRegistry::Builtin().Get(scenario_name);

      const mp::FleetResult fleet =
          mp::EvaluateFleet(set, cpu, ffd, 2, arms, options);
      const core::MethodOutcome& acs = fleet.outcomes[0].fleet;
      const core::MethodOutcome& wcs = fleet.outcomes[1].fleet;
      EXPECT_LE(acs.measured_energy, wcs.measured_energy)
          << scenario_name << " on " << set.Describe();
      EXPECT_EQ(acs.deadline_misses, 0) << scenario_name;
      EXPECT_EQ(wcs.deadline_misses, 0) << scenario_name;
    }
  }
}

// (b) extended to the scenario-conditioned plan: on paired draws the
// acs-scenario fleet never consumes more energy than the wcs fleet, per
// scenario x core count.  Same scope note as above — not a theorem, but a
// deterministic regression on the pinned seeds: planning at the calibrated
// realised mean is at least as slack-aware as planning at ACEC, and both
// dominate the WCEC plan under every built-in process (whose realised
// means all sit at or below the ACEC region).
TEST(PropInvariants, AcsScenarioFleetNeverAboveWcsFleetPerScenarioAndCores) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const core::MethodRegistry& methods = core::MethodRegistry::Builtin();
  const std::vector<const core::ScheduleMethod*> arms = {
      &methods.Get("acs-scenario"), &methods.Get("wcs")};
  const mp::Partitioner& ffd =
      mp::PartitionerRegistry::Builtin().Get("ffd");

  for (const model::TaskSet& set : PropertySets(cpu)) {
    for (const std::string& scenario_name :
         workload::ScenarioRegistry::Builtin().Names()) {
      core::ExperimentOptions options = PropertyOptions();
      options.scenario =
          &workload::ScenarioRegistry::Builtin().Get(scenario_name);

      for (int cores : {1, 2}) {
        const mp::FleetResult fleet =
            mp::EvaluateFleet(set, cpu, ffd, cores, arms, options);
        const core::MethodOutcome& planned = fleet.outcomes[0].fleet;
        const core::MethodOutcome& wcs = fleet.outcomes[1].fleet;
        EXPECT_LE(planned.measured_energy, wcs.measured_energy)
            << scenario_name << " m=" << cores << " on " << set.Describe();
        EXPECT_EQ(planned.deadline_misses, 0)
            << scenario_name << " m=" << cores;
        EXPECT_EQ(wcs.deadline_misses, 0) << scenario_name << " m=" << cores;
      }
    }
  }
}

// (a) + (c) for the online arms at the fleet level: acs-online and
// acs-online-drift keep the worst-case window at every dispatch, so
// partitioned fleets built from them inherit zero deadline misses per
// scenario x core count, and their fleet energy stays inside the physical
// Vmin/BCEC floor and the paired static-vmax ceiling.  (The per-method m=1
// sweep above already audits their offline schedules; this pins the
// multi-core path through mp::EvaluateFleet, including the mid-run drift
// replans.)
TEST(PropInvariants, OnlineArmsFleetSafeAndBoundedPerScenarioAndCores) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const core::MethodRegistry& methods = core::MethodRegistry::Builtin();
  const std::vector<std::string> arm_names = {"acs-online",
                                              "acs-online-drift"};
  const std::vector<const core::ScheduleMethod*> arms = {
      &methods.Get("acs-online"), &methods.Get("acs-online-drift"),
      &methods.Get("static-vmax")};
  const mp::Partitioner& ffd =
      mp::PartitionerRegistry::Builtin().Get("ffd");

  for (const model::TaskSet& set : PropertySets(cpu)) {
    // Fleet energy is per-ms normalised (each core's hyper-period energy
    // over its hyper-period length, summed), so the floor is the BCEC/Vmin
    // *power*: partitioning never changes a task's bcec/period rate, so the
    // full-set rate bounds every partition.
    const double floor =
        VminBcecFloor(set, cpu) / static_cast<double>(set.hyper_period());
    for (const std::string& scenario_name :
         workload::ScenarioRegistry::Builtin().Names()) {
      core::ExperimentOptions options = PropertyOptions();
      options.scenario =
          &workload::ScenarioRegistry::Builtin().Get(scenario_name);
      // A twitchy detector makes the drift arm actually replan on these
      // short runs, so the invariants cover the recalibrated plans too.
      options.online.drift_threshold = 0.05;

      for (int cores : {1, 2}) {
        const mp::FleetResult fleet =
            mp::EvaluateFleet(set, cpu, ffd, cores, arms, options);
        const core::MethodOutcome& ceiling = fleet.outcomes[2].fleet;
        for (int arm = 0; arm < 2; ++arm) {
          const core::MethodOutcome& online = fleet.outcomes[arm].fleet;
          const std::string label = arm_names[arm] + " under " +
                                    scenario_name + " m=" +
                                    std::to_string(cores);
          EXPECT_EQ(online.deadline_misses, 0) << label;
          EXPECT_GE(online.measured_energy, floor * (1.0 - 1e-9)) << label;
          EXPECT_LE(online.measured_energy,
                    ceiling.measured_energy * (1.0 + 1e-9))
              << label;
        }
      }
    }
  }
}

// (d) DPM audit 1 — the critical speed really is the per-cycle optimum:
// for randomized leakage floors, no speed in the model's range beats it on
// total (dynamic + floor) energy per cycle, and below it energy rises
// monotonically as speed falls.
TEST(PropInvariants, CriticalSpeedMinimisesPerCycleEnergy) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  stats::Rng rng(4242);
  for (int draw = 0; draw < 32; ++draw) {
    const double p = rng.Uniform(0.05, 3.0);
    const double star = dpm::CriticalSpeed(cpu, p);
    const auto per_cycle = [&](double s) {
      return cpu.EnergyPerCycle(cpu.VoltageForSpeed(s)) + p / s;
    };
    const double at_star = per_cycle(star);
    double below_prev = at_star;
    for (int i = 1; i <= 16; ++i) {
      const double frac = static_cast<double>(i) / 16.0;
      // Nothing in [MinSpeed, MaxSpeed] beats the critical speed...
      const double s =
          cpu.MinSpeed() + frac * (cpu.MaxSpeed() - cpu.MinSpeed());
      EXPECT_GE(per_cycle(s), at_star - 1e-9) << "p=" << p << " s=" << s;
      // ...and below it, slowing down monotonically costs more.
      const double below = star - frac * (star - cpu.MinSpeed());
      if (below < star - 1e-9) {
        EXPECT_GE(per_cycle(below), below_prev - 1e-12)
            << "p=" << p << " s=" << below;
        below_prev = per_cycle(below);
      }
    }
  }
}

// (e) DPM audit 2 — timed sleeps are deadline-neutral and never lose
// energy: with a non-zero idle floor, DPM-on fleets finish every draw with
// zero misses and no more measured energy than the identical DPM-off run.
TEST(PropInvariants, DpmSleepNeverMissesAndNeverCostsEnergy) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::IdlePower idle{0.5};
  const std::vector<const core::ScheduleMethod*> arms = {
      &core::MethodRegistry::Builtin().Get("acs"),
      &core::MethodRegistry::Builtin().Get("wcs")};
  for (const model::TaskSet& set : PropertySets(cpu)) {
    for (const std::string& name :
         mp::PartitionerRegistry::Builtin().Names()) {
      const mp::Partitioner& partitioner =
          mp::PartitionerRegistry::Builtin().Get(name);
      core::ExperimentOptions off_options = PropertyOptions();
      const mp::FleetResult off =
          mp::EvaluateFleet(set, cpu, partitioner, 2, arms, off_options,
                            idle);

      core::ExperimentOptions on_options = off_options;
      on_options.dpm.enabled = true;
      on_options.dpm.sleep = dpm::ResolveSleepState("deep", idle);
      on_options.dpm.reallocate = true;
      const mp::FleetResult on =
          mp::EvaluateFleet(set, cpu, partitioner, 2, arms, on_options,
                            idle);

      for (std::size_t m = 0; m < on.outcomes.size(); ++m) {
        const std::string label = name + " method " + std::to_string(m);
        EXPECT_EQ(on.outcomes[m].fleet.deadline_misses, 0) << label;
        EXPECT_LE(on.outcomes[m].fleet.measured_energy,
                  off.outcomes[m].fleet.measured_energy + 1e-9)
            << label;
      }
    }
  }
}

// (f) DPM audit 3 — the master switch is inert bit-for-bit: a disabled but
// fully-populated dpm::Options leaves every fleet figure exactly equal to
// the legacy run's, for every partitioner and property set.
TEST(PropInvariants, DpmOffFleetEnergyBitIdentical) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::IdlePower idle{0.3};
  const std::vector<const core::ScheduleMethod*> arms = {
      &core::MethodRegistry::Builtin().Get("acs"),
      &core::MethodRegistry::Builtin().Get("wcs")};
  for (const model::TaskSet& set : PropertySets(cpu)) {
    for (const std::string& name :
         mp::PartitionerRegistry::Builtin().Names()) {
      const mp::Partitioner& partitioner =
          mp::PartitionerRegistry::Builtin().Get(name);
      const mp::FleetResult legacy = mp::EvaluateFleet(
          set, cpu, partitioner, 2, arms, PropertyOptions(), idle);

      core::ExperimentOptions disarmed = PropertyOptions();
      disarmed.dpm.sleep = dpm::ResolveSleepState("shallow", idle);
      disarmed.dpm.reallocate = true;
      disarmed.dpm.critical_speed = 0.9;
      const mp::FleetResult off = mp::EvaluateFleet(
          set, cpu, partitioner, 2, arms, disarmed, idle);

      for (std::size_t m = 0; m < legacy.outcomes.size(); ++m) {
        const std::string label = name + " method " + std::to_string(m);
        EXPECT_EQ(off.outcomes[m].fleet.measured_energy,
                  legacy.outcomes[m].fleet.measured_energy)
            << label;
        EXPECT_EQ(off.outcomes[m].fleet.predicted_energy,
                  legacy.outcomes[m].fleet.predicted_energy)
            << label;
        EXPECT_EQ(off.outcomes[m].fleet.sleeps, 0) << label;
        EXPECT_EQ(off.outcomes[m].fleet.migrations, 0) << label;
      }
    }
  }
}

// (g) DPM audit 4 — the reallocator's output is always a valid partition
// whose every powered core still passes the partitioners' exact RM
// admission at Vmax, whatever partition it starts from.
TEST(PropInvariants, ReallocatorPreservesRmAdmission) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  for (const model::TaskSet& set : PropertySets(cpu)) {
    for (const std::string& name :
         mp::PartitionerRegistry::Builtin().Names()) {
      const mp::Partitioner& partitioner =
          mp::PartitionerRegistry::Builtin().Get(name);
      for (int cores : {2, 3}) {
        const mp::Partition start =
            partitioner.Assign(set, cpu, cores, model::IdlePower{1.0});
        const dpm::ReallocationResult result =
            dpm::Consolidate(start, set, cpu, model::IdlePower{1.0});
        result.partition.Validate(set);
        EXPECT_EQ(result.partition.used_cores(),
                  start.used_cores() - result.emptied_cores);
        for (int c = 0; c < result.partition.cores(); ++c) {
          const auto& tasks =
              result.partition.assignment[static_cast<std::size_t>(c)];
          if (tasks.empty()) {
            continue;
          }
          const model::TaskSet subset = mp::SubTaskSet(set, tasks);
          const fps::FullyPreemptiveSchedule expansion(subset);
          EXPECT_TRUE(sim::IsRmSchedulable(expansion, cpu))
              << name << " m=" << cores << " core " << c;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dvs
