// util::NamedRegistry<T>: the shared machinery behind core::MethodRegistry
// and mp::PartitionerRegistry.  The registry-specific behaviour (ordering,
// duplicate rejection, recovery-friendly error wording) is asserted here
// once; the domain registries' own tests keep covering their public APIs.
#include "util/named_registry.h"

#include <gtest/gtest.h>

#include "core/method_registry.h"
#include "mp/partitioner.h"
#include "util/error.h"

namespace dvs::util {
namespace {

struct Widget {
  explicit Widget(int id) : id(id) {}
  int id;
};

using WidgetRegistry = NamedRegistry<Widget>;

WidgetRegistry MakeRegistry() {
  WidgetRegistry registry("widget", "test widget", "widgets");
  registry.Register("alpha", "first widget", std::make_unique<Widget>(1));
  registry.Register("beta", "second widget", std::make_unique<Widget>(2));
  return registry;
}

TEST(NamedRegistry, RegistersAndLooksUpInOrder) {
  const WidgetRegistry registry = MakeRegistry();
  EXPECT_TRUE(registry.Contains("alpha"));
  EXPECT_TRUE(registry.Contains("beta"));
  EXPECT_FALSE(registry.Contains("gamma"));
  EXPECT_EQ(registry.Get("alpha").id, 1);
  EXPECT_EQ(registry.Get("beta").id, 2);
  EXPECT_EQ(registry.Description("beta"), "second widget");
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(NamedRegistry, RejectsDuplicatesEmptyNamesAndNulls) {
  WidgetRegistry registry = MakeRegistry();
  EXPECT_THROW(
      registry.Register("alpha", "again", std::make_unique<Widget>(3)),
      InvalidArgumentError);
  EXPECT_THROW(registry.Register("", "unnamed", std::make_unique<Widget>(4)),
               InvalidArgumentError);
  EXPECT_THROW(registry.Register("gamma", "null", nullptr),
               InvalidArgumentError);
}

TEST(NamedRegistry, UnknownNameErrorUsesNounsAndListsEntries) {
  const WidgetRegistry registry = MakeRegistry();
  try {
    registry.Get("gamma");
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("unknown test widget \"gamma\""), std::string::npos)
        << what;
    EXPECT_NE(what.find("registered widgets"), std::string::npos) << what;
    EXPECT_NE(what.find("alpha, beta"), std::string::npos) << what;
  }
}

// The domain registries are thin subclasses: their historical error wording
// must survive the move onto the template.
TEST(NamedRegistry, DomainRegistriesKeepTheirErrorWording) {
  try {
    core::MethodRegistry::Builtin().Get("no-such-method");
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("unknown schedule method"), std::string::npos) << what;
    EXPECT_NE(what.find("registered methods"), std::string::npos) << what;
  }
  try {
    mp::PartitionerRegistry::Builtin().Get("no-such-partitioner");
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("unknown partitioner"), std::string::npos) << what;
    EXPECT_NE(what.find("registered partitioners"), std::string::npos) << what;
    EXPECT_NE(what.find("ffd"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace dvs::util
