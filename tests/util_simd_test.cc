// SIMD dispatch + kernel agreement tests.
//
// Every kernel is exercised over a lane-width sweep (n = 0 .. 19, covering
// empty input, sub-vector tails and multi-block bodies) at the scalar level
// and at the best level the CPU supports.  Element-wise kernels must agree
// bit-for-bit across levels (identical per-element arithmetic, only the
// batching differs); reductions fold lanes in a different FP association,
// so they agree to tight relative tolerance.  On hardware without AVX2 the
// forced level clamps to scalar and the comparisons hold trivially — the
// sweep then pins the scalar kernels against the reference loops below.
#include "util/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace dvs::util::simd {
namespace {

/// Deterministic fill in roughly [-2, 2] — no <random> so the expected
/// values are stable across standard libraries.
std::vector<double> Fill(std::size_t n, std::uint64_t seed) {
  std::vector<double> values(n);
  std::uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    values[i] = static_cast<double>(static_cast<std::int64_t>(state >> 11)) /
                    static_cast<double>(1ll << 51) -
                1.0;
    values[i] *= 2.0;
  }
  return values;
}

constexpr std::size_t kMaxN = 20;
constexpr double kRelTol = 1e-12;

double RelNear(double a, double b) {
  return std::abs(a - b) / std::max({std::abs(a), std::abs(b), 1.0});
}

TEST(SimdDispatch, ParseLevelAcceptsTheDocumentedNames) {
  Level level = Level::kAvx2;
  EXPECT_TRUE(ParseLevel("scalar", &level));
  EXPECT_EQ(level, Level::kScalar);
  EXPECT_TRUE(ParseLevel("avx2", &level));
  EXPECT_EQ(level, Level::kAvx2);
  EXPECT_TRUE(ParseLevel("auto", &level));
  EXPECT_EQ(level, Detect());
  EXPECT_FALSE(ParseLevel("sse9", &level));
  EXPECT_FALSE(ParseLevel("", &level));
  EXPECT_FALSE(ParseLevel("Scalar", &level));  // case-sensitive
}

TEST(SimdDispatch, SetLevelClampsToHardwareSupport) {
  ScopedLevel guard(Active());  // restore whatever the suite runs under
  SetLevel(Level::kAvx2);
  EXPECT_LE(static_cast<int>(Active()), static_cast<int>(Detect()));
  SetLevel(Level::kScalar);
  EXPECT_EQ(Active(), Level::kScalar);
}

TEST(SimdDispatch, ScopedLevelRestoresOnExit) {
  const Level before = Active();
  {
    ScopedLevel pin(Level::kScalar);
    EXPECT_EQ(Active(), Level::kScalar);
  }
  EXPECT_EQ(Active(), before);
}

TEST(SimdDispatch, LevelNamesRoundTrip) {
  Level level;
  ASSERT_TRUE(ParseLevel(LevelName(Level::kScalar), &level));
  EXPECT_EQ(level, Level::kScalar);
  ASSERT_TRUE(ParseLevel(LevelName(Level::kAvx2), &level));
  EXPECT_EQ(level, Level::kAvx2);
}

TEST(SimdKernels, ScalarLevelMatchesReferenceLoops) {
  ScopedLevel pin(Level::kScalar);
  for (std::size_t n = 0; n < kMaxN; ++n) {
    const std::vector<double> a = Fill(n, 1);
    const std::vector<double> b = Fill(n, 2);

    double dot = 0.0;
    double sum = 0.0;
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dot += a[i] * b[i];
      sum += a[i];
      norm = std::max(norm, std::abs(a[i]));
    }
    EXPECT_EQ(Dot(a.data(), b.data(), n), dot) << "n=" << n;
    EXPECT_EQ(Sum(a.data(), n), sum) << "n=" << n;
    EXPECT_EQ(NormInf(a.data(), n), norm) << "n=" << n;

    std::vector<double> y = Fill(n, 3);
    std::vector<double> expected = y;
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] += 0.75 * a[i];
    }
    Axpy(0.75, a.data(), y.data(), n);
    EXPECT_EQ(y, expected) << "n=" << n;
  }
}

TEST(SimdKernels, ElementwiseKernelsBitIdenticalAcrossLevels) {
  for (std::size_t n = 0; n < kMaxN; ++n) {
    const std::vector<double> a = Fill(n, 11);
    const std::vector<double> b = Fill(n, 12);
    std::vector<double> lo = Fill(n, 13);
    std::vector<double> hi = lo;
    for (double& v : hi) {
      v += 1.5;
    }

    struct Run {
      std::vector<double> axpy, add, scale, sub, add_scaled, clamp;
    };
    auto run = [&](Level level) {
      ScopedLevel pin(level);
      Run r;
      r.axpy = Fill(n, 14);
      Axpy(-1.25, a.data(), r.axpy.data(), n);
      r.add = Fill(n, 14);
      Add(a.data(), r.add.data(), n);
      r.scale = a;
      Scale(0.3, r.scale.data(), n);
      r.sub.resize(n);
      Subtract(a.data(), b.data(), r.sub.data(), n);
      r.add_scaled.resize(n);
      AddScaled(a.data(), -0.6, b.data(), r.add_scaled.data(), n);
      r.clamp = b;
      ClampBox(lo.data(), hi.data(), r.clamp.data(), n);
      return r;
    };

    const Run scalar = run(Level::kScalar);
    const Run best = run(Detect());
    EXPECT_EQ(scalar.axpy, best.axpy) << "n=" << n;
    EXPECT_EQ(scalar.add, best.add) << "n=" << n;
    EXPECT_EQ(scalar.scale, best.scale) << "n=" << n;
    EXPECT_EQ(scalar.sub, best.sub) << "n=" << n;
    EXPECT_EQ(scalar.add_scaled, best.add_scaled) << "n=" << n;
    EXPECT_EQ(scalar.clamp, best.clamp) << "n=" << n;
  }
}

TEST(SimdKernels, ReductionsAgreeAcrossLevelsToTolerance) {
  for (std::size_t n = 0; n < kMaxN; ++n) {
    const std::vector<double> a = Fill(n, 21);
    const std::vector<double> b = Fill(n, 22);
    const std::vector<double> g = Fill(n, 23);
    const std::vector<double> t = Fill(n, 24);

    struct Run {
      double dot, sum, norm, slope, sts, sty;
      std::vector<double> direction;
    };
    auto run = [&](Level level) {
      ScopedLevel pin(level);
      Run r;
      r.dot = Dot(a.data(), b.data(), n);
      r.sum = Sum(a.data(), n);
      r.norm = NormInf(a.data(), n);
      r.direction.resize(n);
      r.slope = StepAndSlope(a.data(), g.data(), t.data(), r.direction.data(),
                             n);
      SpectralPair(0.8, r.direction.data(), g.data(), t.data(), n, &r.sts,
                   &r.sty);
      return r;
    };

    const Run scalar = run(Level::kScalar);
    const Run best = run(Detect());
    EXPECT_LE(RelNear(scalar.dot, best.dot), kRelTol) << "n=" << n;
    EXPECT_LE(RelNear(scalar.sum, best.sum), kRelTol) << "n=" << n;
    // max |.| involves no accumulation: exact at every level.
    EXPECT_EQ(scalar.norm, best.norm) << "n=" << n;
    // direction is element-wise even inside the fused pass.
    EXPECT_EQ(scalar.direction, best.direction) << "n=" << n;
    EXPECT_LE(RelNear(scalar.slope, best.slope), kRelTol) << "n=" << n;
    EXPECT_LE(RelNear(scalar.sts, best.sts), kRelTol) << "n=" << n;
    EXPECT_LE(RelNear(scalar.sty, best.sty), kRelTol) << "n=" << n;
  }
}

TEST(SimdKernels, BoxCriterionDecisionsMatchAcrossLevels) {
  for (std::size_t n = 0; n < kMaxN; ++n) {
    const std::vector<double> x = Fill(n, 31);
    const std::vector<double> grad = Fill(n, 32);
    std::vector<double> lo = Fill(n, 33);
    std::vector<double> hi = lo;
    for (double& v : hi) {
      v += 2.0;
    }
    std::vector<double> mask(n, 1.0);
    for (std::size_t i = 0; i < n; i += 3) {
      mask[i] = 0.0;  // some simplex-owned coordinates
    }

    for (double threshold : {0.0, 1e-6, 0.5, 1e9}) {
      double scalar_value;
      double best_value;
      {
        ScopedLevel pin(Level::kScalar);
        scalar_value = BoxCriterion(x.data(), grad.data(), lo.data(),
                                    hi.data(), mask.data(), n, threshold);
      }
      {
        ScopedLevel pin(Detect());
        best_value = BoxCriterion(x.data(), grad.data(), lo.data(), hi.data(),
                                  mask.data(), n, threshold);
      }
      // The contract is the converged/not-converged decision, not the exact
      // value: early exit may return any sound lower bound above threshold.
      EXPECT_EQ(scalar_value > threshold, best_value > threshold)
          << "n=" << n << " threshold=" << threshold;
      if (scalar_value <= threshold) {
        EXPECT_EQ(scalar_value, best_value) << "n=" << n;
      }
    }
  }
}

TEST(SimdKernels, PackedRows3MatchesPerRowEvaluation) {
  for (std::size_t rows = 0; rows < kMaxN; ++rows) {
    const std::size_t dim = 7;
    const std::vector<double> x = Fill(dim, 41);
    const std::vector<double> constant = Fill(rows, 42);
    const std::vector<double> coeff(Fill(3 * rows, 43));
    std::vector<std::int32_t> idx(3 * rows);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      idx[i] = static_cast<std::int32_t>((i * 5 + 2) % dim);
    }

    std::vector<double> expected(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      expected[r] = constant[r] + coeff[0 * rows + r] * x[idx[0 * rows + r]] +
                    coeff[1 * rows + r] * x[idx[1 * rows + r]] +
                    coeff[2 * rows + r] * x[idx[2 * rows + r]];
    }

    for (Level level : {Level::kScalar, Detect()}) {
      ScopedLevel pin(level);
      std::vector<double> out(rows, -1.0);
      PackedRows3(constant.data(), coeff.data(), idx.data(), x.data(),
                  out.data(), rows);
      for (std::size_t r = 0; r < rows; ++r) {
        EXPECT_LE(RelNear(out[r], expected[r]), kRelTol)
            << "rows=" << rows << " r=" << r
            << " level=" << LevelName(level);
      }
    }
  }
}

}  // namespace
}  // namespace dvs::util::simd
