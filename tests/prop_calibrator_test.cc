// Statistical test harness for workload::ScenarioCalibrator.
//
// Three families:
//   (1) convergence — the estimated per-task mean / stddev / quantiles
//       converge to closed-form values of the underlying law within a
//       fixed-sample-count tolerance (iid-normal against the analytic
//       truncated normal, bimodal against its two-mode mixture);
//   (2) determinism — Calibrate(set, seed) is bit-identical across calls
//       and across thread counts (1 vs 4), for every registered scenario;
//   (3) contracts — draws clamped to [BCEC, WCEC], quantiles monotone in
//       p, sample vectors shaped (k x tasks) with entries drawn from the
//       calibration run.
//
// Tolerances: an N-sample mean of a law with dispersion sigma has standard
// error sigma / sqrt(N); bounds below use 5 standard errors (a ~3e-7
// false-positive rate) on deterministic seeds, so failures are regressions,
// not flakes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "model/task.h"
#include "model/workload.h"
#include "stats/distributions.h"
#include "workload/calibrator.h"
#include "workload/scenario.h"

namespace dvs::workload {
namespace {

/// A small set with deliberately different windows: one symmetric (ACEC at
/// the midpoint, so the truncated normal's mean and median coincide with
/// it), one asymmetric, one collapsed (BCEC == WCEC, the degenerate lane).
model::TaskSet CalibrationSet() {
  model::Task a;
  a.name = "sym";
  a.period = 10;
  a.bcec = 200.0;
  a.acec = 600.0;
  a.wcec = 1000.0;
  model::Task b;
  b.name = "asym";
  b.period = 20;
  b.bcec = 300.0;
  b.acec = 450.0;
  b.wcec = 1200.0;
  model::Task c;
  c.name = "fixed";
  c.period = 40;
  c.bcec = 500.0;
  c.acec = 500.0;
  c.wcec = 500.0;
  return model::TaskSet({a, b, c});
}

constexpr std::int64_t kSamples = 8192;
constexpr std::uint64_t kSeed = 20260731;

Calibration Calibrate(const char* scenario, int threads = 1,
                      std::int64_t samples = kSamples) {
  const model::TaskSet set = CalibrationSet();
  CalibratorOptions options;
  options.samples_per_task = samples;
  options.threads = threads;
  const ScenarioCalibrator calibrator(
      &ScenarioRegistry::Builtin().Get(scenario), 6.0, options);
  return calibrator.Calibrate(set, kSeed);
}

// (1) iid-normal converges to the analytic truncated normal.
TEST(ScenarioCalibrator, IidNormalMatchesClosedFormMoments) {
  const model::TaskSet set = CalibrationSet();
  const Calibration cal = Calibrate("iid-normal");

  for (model::TaskIndex i = 0; i < set.size(); ++i) {
    const model::Task& t = set.task(i);
    const double span = t.wcec - t.bcec;
    if (span == 0.0) {
      EXPECT_EQ(cal.mean[i], t.wcec) << t.name;
      EXPECT_EQ(cal.stddev[i], 0.0) << t.name;
      continue;
    }
    const stats::TruncatedNormal law(t.acec, span / 6.0, t.bcec, t.wcec);
    const double sigma = std::sqrt(law.Variance());
    const double mean_tol = 5.0 * sigma / std::sqrt(double(kSamples));
    EXPECT_NEAR(cal.mean[i], law.Mean(), mean_tol) << t.name;
    // Sample stddev converges at ~sigma / sqrt(2N); allow a generous 5x.
    EXPECT_NEAR(cal.stddev[i], sigma,
                5.0 * sigma / std::sqrt(2.0 * double(kSamples)))
        << t.name;
  }
}

TEST(ScenarioCalibrator, IidNormalSymmetricQuantilesMatchClosedForm) {
  const model::TaskSet set = CalibrationSet();
  const Calibration cal = Calibrate("iid-normal");

  // Task "sym": ACEC at the window midpoint => the truncated law is
  // symmetric about ACEC, so the median equals ACEC and the p25/p75
  // quantiles sit symmetrically around it.  Quantile estimates converge at
  // ~sigma * sqrt(p(1-p)) / (pdf * sqrt(N)); with sigma = span/6 a 5-SE
  // bound is ~6 cycles — use 8 for the pdf approximation slack.
  const model::Task& t = set.task(0);
  const double sigma = (t.wcec - t.bcec) / 6.0;
  const double q50 = cal.Quantile(0, 0.5);
  const double q25 = cal.Quantile(0, 0.25);
  const double q75 = cal.Quantile(0, 0.75);
  EXPECT_NEAR(q50, t.acec, 8.0 * sigma / std::sqrt(double(kSamples)) *
                               std::sqrt(0.25) / stats::NormalPdf(0.0));
  EXPECT_NEAR(q75 - t.acec, t.acec - q25,
              16.0 * sigma / std::sqrt(double(kSamples)));
  // The closed-form p75 of the (effectively untruncated at 3-sigma) normal:
  // acec + 0.6745 sigma.
  EXPECT_NEAR(q75, t.acec + 0.674489750196082 * sigma,
              10.0 * sigma / std::sqrt(double(kSamples)) /
                  stats::NormalPdf(0.674489750196082));
}

// (1) bimodal converges to its documented two-mode mixture.
TEST(ScenarioCalibrator, BimodalMatchesClosedFormMixtureMean) {
  const model::TaskSet set = CalibrationSet();
  const Calibration cal = Calibrate("bimodal");

  for (model::TaskIndex i = 0; i < set.size(); ++i) {
    const model::Task& t = set.task(i);
    const double span = t.wcec - t.bcec;
    if (span == 0.0) {
      EXPECT_EQ(cal.mean[i], t.wcec) << t.name;
      continue;
    }
    // The documented process (workload/scenario.cc): hit mode at
    // BCEC + 0.2 span, miss mode at WCEC - 0.1 span, both sigma
    // span / (2 * sigma_divisor), mixed 3/4 : 1/4.
    const double mode_sigma = span / 12.0;
    const stats::TruncatedNormal hit(t.bcec + 0.2 * span, mode_sigma,
                                     t.bcec, t.wcec);
    const stats::TruncatedNormal miss(t.wcec - 0.1 * span, mode_sigma,
                                      t.bcec, t.wcec);
    const double mixture_mean = 0.75 * hit.Mean() + 0.25 * miss.Mean();
    // Mixture variance = E[mode variance] + Var[mode mean].
    const double gap = miss.Mean() - hit.Mean();
    const double mixture_var = 0.75 * hit.Variance() +
                               0.25 * miss.Variance() +
                               0.75 * 0.25 * gap * gap;
    const double tol =
        5.0 * std::sqrt(mixture_var / double(kSamples));
    EXPECT_NEAR(cal.mean[i], mixture_mean, tol) << t.name;
    // The median must fall in the hit mode (75% of the mass), far below
    // the mixture mean — the shape signature point planning exploits.
    EXPECT_LT(cal.Quantile(i, 0.5), mixture_mean) << t.name;
  }
}

// (2) bit-identical across calls and thread counts, for every scenario.
TEST(ScenarioCalibrator, DeterministicAcrossRunsAndThreadCounts) {
  for (const std::string& name : ScenarioRegistry::Builtin().Names()) {
    const Calibration serial = Calibrate(name.c_str(), 1, 1024);
    const Calibration again = Calibrate(name.c_str(), 1, 1024);
    const Calibration threaded = Calibrate(name.c_str(), 4, 1024);
    EXPECT_EQ(serial.mean, again.mean) << name;
    EXPECT_EQ(serial.stddev, again.stddev) << name;
    EXPECT_EQ(serial.draws, again.draws) << name;
    EXPECT_EQ(serial.mean, threaded.mean) << name << " (4 threads)";
    EXPECT_EQ(serial.stddev, threaded.stddev) << name << " (4 threads)";
    EXPECT_EQ(serial.draws, threaded.draws) << name << " (4 threads)";
    EXPECT_EQ(serial.sorted, threaded.sorted) << name << " (4 threads)";
  }
}

// (3) contracts: clamping, quantile monotonicity, sample-vector shape.
TEST(ScenarioCalibrator, DrawsClampedAndQuantilesMonotone) {
  const model::TaskSet set = CalibrationSet();
  for (const std::string& name : ScenarioRegistry::Builtin().Names()) {
    const Calibration cal = Calibrate(name.c_str(), 1, 1024);
    for (model::TaskIndex i = 0; i < set.size(); ++i) {
      const model::Task& t = set.task(i);
      EXPECT_GE(cal.sorted[i].front(), t.bcec) << name << " " << t.name;
      EXPECT_LE(cal.sorted[i].back(), t.wcec) << name << " " << t.name;
      double previous = cal.Quantile(i, 0.0);
      for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        const double q = cal.Quantile(i, p);
        EXPECT_GE(q, previous) << name << " " << t.name << " p=" << p;
        previous = q;
      }
    }
  }
}

TEST(ScenarioCalibrator, SampleVectorsAreJointDrawsFromTheRun) {
  const model::TaskSet set = CalibrationSet();
  const Calibration cal = Calibrate("bursty", 1, 1024);
  const std::vector<std::vector<double>> vectors = cal.SampleVectors(8);
  ASSERT_EQ(vectors.size(), 8u);
  for (const std::vector<double>& vec : vectors) {
    ASSERT_EQ(vec.size(), set.size());
    for (model::TaskIndex i = 0; i < set.size(); ++i) {
      // Every entry is literally one of task i's calibration draws.
      EXPECT_TRUE(std::binary_search(cal.sorted[i].begin(),
                                     cal.sorted[i].end(), vec[i]))
          << i;
    }
  }
}

}  // namespace
}  // namespace dvs::workload
