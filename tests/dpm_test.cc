#include "dpm/dpm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dpm/reallocate.h"
#include "fps/expansion.h"
#include "mp/partition.h"
#include "sim/engine.h"
#include "util/error.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::dpm {
namespace {

// For a linear model (speed = k*V) the per-cycle energy with an always-on
// floor p is ceff*(s/k)^2 + p/s, minimised at s* = (p*k^2 / (2*ceff))^(1/3).
TEST(CriticalSpeedFn, MatchesClosedFormForLinearModel) {
  const model::LinearDvsModel cpu(0.1, 4.0, 1.0, 1.0);
  for (double p : {0.05, 0.2, 0.5, 1.0, 4.0}) {
    const double expected = std::cbrt(p / 2.0);
    EXPECT_NEAR(CriticalSpeed(cpu, p), expected, 1e-6) << "p=" << p;
  }
  // Non-unit k and ceff move the optimum per the closed form.
  const model::LinearDvsModel wide(0.05, 2.0, 0.5, 3.0);
  const double p = 0.3;
  EXPECT_NEAR(CriticalSpeed(wide, p), std::cbrt(p * 9.0 / 1.0), 1e-6);
}

TEST(CriticalSpeedFn, ClampsToSpeedRange) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  // No leakage: slower is always at least as good, so the floor is vmin.
  EXPECT_DOUBLE_EQ(CriticalSpeed(cpu, 0.0), cpu.MinSpeed());
  EXPECT_DOUBLE_EQ(CriticalSpeed(cpu, -1.0), cpu.MinSpeed());
  // Leakage so large the unclamped optimum exceeds vmax: pin to MaxSpeed.
  EXPECT_NEAR(CriticalSpeed(cpu, 1e6), cpu.MaxSpeed(), 1e-6);
  // In between, the critical speed lies strictly inside the range and is
  // monotone in the floor: more leakage, faster optimum.
  double last = 0.0;
  for (double p : {0.5, 1.0, 2.0, 8.0}) {
    const double s = CriticalSpeed(cpu, p);
    EXPECT_GT(s, cpu.MinSpeed());
    EXPECT_LT(s, cpu.MaxSpeed() + 1e-9);
    EXPECT_GT(s, last) << "p=" << p;
    last = s;
  }
}

// Running a cycle below the critical speed costs more total energy than
// running it at the critical speed — the defining property of the floor.
TEST(CriticalSpeedFn, SlowerThanCriticalIsMoreExpensive) {
  const model::LinearDvsModel cpu(0.1, 4.0, 1.0, 1.0);
  const double p = 0.5;
  const double star = CriticalSpeed(cpu, p);
  const auto per_cycle = [&](double s) {
    return cpu.EnergyPerCycle(cpu.VoltageForSpeed(s)) + p / s;
  };
  for (double s : {0.15, 0.3, 0.5, star * 0.9}) {
    EXPECT_GT(per_cycle(s), per_cycle(star)) << "s=" << s;
  }
}

TEST(CriticalSpeedModelClass, RaisesOnlyTheLowerBound) {
  const model::LinearDvsModel base = workload::DefaultModel();
  const CriticalSpeedModel floored(base, 1.7);
  EXPECT_DOUBLE_EQ(floored.vmin(), 1.7);
  EXPECT_DOUBLE_EQ(floored.vmax(), base.vmax());
  EXPECT_DOUBLE_EQ(floored.ceff(), base.ceff());
  EXPECT_DOUBLE_EQ(floored.MaxSpeed(), base.MaxSpeed());
  EXPECT_DOUBLE_EQ(floored.SpeedAt(2.0), base.SpeedAt(2.0));
  EXPECT_DOUBLE_EQ(floored.VoltageForSpeed(3.0), base.VoltageForSpeed(3.0));
  // ClampVoltage now respects the floor from below.
  EXPECT_DOUBLE_EQ(floored.ClampVoltage(0.6), 1.7);
  EXPECT_DOUBLE_EQ(floored.ClampVoltage(2.5), 2.5);
  EXPECT_EQ(&floored.base(), static_cast<const model::DvsModel*>(&base));
}

TEST(CriticalSpeedFloorClass, InactiveWhenDisabledOrBelowVmin) {
  const model::LinearDvsModel cpu = workload::DefaultModel();  // vmin 0.5

  Options off;  // enabled defaults to false
  off.idle.power_per_ms = 0.5;
  EXPECT_FALSE(CriticalSpeedFloor(cpu, off).active());

  Options disabled;
  disabled.enabled = true;
  disabled.idle.power_per_ms = 0.5;
  disabled.critical_speed = -1.0;
  EXPECT_FALSE(CriticalSpeedFloor(cpu, disabled).active());

  // Idle floor so small the derived critical speed sits below MinSpeed:
  // the wrapper would be a no-op, so the base model is handed back.
  Options weak;
  weak.enabled = true;
  weak.idle.power_per_ms = 0.05;
  CriticalSpeedFloor weak_floor(cpu, weak);
  EXPECT_FALSE(weak_floor.active());
  EXPECT_EQ(&weak_floor.model(), static_cast<const model::DvsModel*>(&cpu));
}

TEST(CriticalSpeedFloorClass, DerivedAndForcedFloors) {
  const model::LinearDvsModel cpu = workload::DefaultModel();

  Options derived;
  derived.enabled = true;
  derived.idle.power_per_ms = 0.5;  // critical speed ~0.63 > MinSpeed 0.5
  CriticalSpeedFloor auto_floor(cpu, derived);
  ASSERT_TRUE(auto_floor.active());
  EXPECT_NEAR(auto_floor.speed_floor(), std::cbrt(0.25), 1e-6);
  EXPECT_NE(&auto_floor.model(), static_cast<const model::DvsModel*>(&cpu));
  EXPECT_NEAR(auto_floor.model().MinSpeed(), auto_floor.speed_floor(), 1e-9);
  EXPECT_DOUBLE_EQ(auto_floor.model().MaxSpeed(), cpu.MaxSpeed());

  Options forced;
  forced.enabled = true;
  forced.idle.power_per_ms = 0.5;
  forced.critical_speed = 0.5;  // half of MaxSpeed = 2.0 cycles/ms
  CriticalSpeedFloor half(cpu, forced);
  ASSERT_TRUE(half.active());
  EXPECT_NEAR(half.speed_floor(), 2.0, 1e-9);
}

TEST(ResolveSleepStateFn, PresetsScaleWithTheIdleFloor) {
  const model::IdlePower idle{0.4};

  const model::SleepState ideal = ResolveSleepState("ideal", idle);
  EXPECT_TRUE(ideal.IsZero());
  EXPECT_DOUBLE_EQ(ideal.BreakEvenTime(idle), 0.0);

  const model::SleepState deep = ResolveSleepState("deep", idle);
  EXPECT_DOUBLE_EQ(deep.power_per_ms, 0.02 * idle.power_per_ms);
  EXPECT_DOUBLE_EQ(deep.TransitionLatency(), 1.0);
  EXPECT_DOUBLE_EQ(deep.TransitionEnergy(), idle.power_per_ms);
  // One floor-ms per transition pair at 2% residency: break-even exactly
  // (E_tr - p_sleep*L) / (p_idle - p_sleep) = 0.98p / 0.98p = 1 ms.
  EXPECT_NEAR(deep.BreakEvenTime(idle), 1.0, 1e-12);
  EXPECT_FALSE(deep.Worthwhile(0.9, idle));
  EXPECT_TRUE(deep.Worthwhile(1.1, idle));

  const model::SleepState shallow = ResolveSleepState("shallow", idle);
  EXPECT_LT(shallow.power_per_ms, idle.power_per_ms);
  EXPECT_LT(shallow.BreakEvenTime(idle), deep.BreakEvenTime(idle));

  // A state that never saves anything: break-even is +infinity.
  model::SleepState useless;
  useless.power_per_ms = idle.power_per_ms;
  EXPECT_TRUE(std::isinf(useless.BreakEvenTime(idle)));
  EXPECT_FALSE(useless.Worthwhile(1e9, idle));
}

TEST(ResolveSleepStateFn, UnknownNameThrowsListingPresets) {
  const model::IdlePower idle{0.1};
  EXPECT_THROW(ResolveSleepState("hibernate", idle),
               util::InvalidArgumentError);
  EXPECT_EQ(SleepStateNames().size(), 3u);
}

model::TaskSet LightSet(const model::DvsModel& dvs, int num_tasks,
                        double utilization, std::uint64_t seed) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = num_tasks;
  gen.bcec_wcec_ratio = 0.3;
  gen.utilization = utilization;
  gen.max_sub_instances = 200;
  stats::Rng rng(seed);
  return workload::GenerateRandomTaskSet(gen, dvs, rng);
}

/// Round-robin spread: the worst case for the idle floor and the natural
/// input for the consolidation pass.
mp::Partition SpreadPartition(const model::TaskSet& set, int cores) {
  mp::Partition partition;
  partition.assignment.resize(static_cast<std::size_t>(cores));
  for (model::TaskIndex t = 0; t < set.size(); ++t) {
    partition.assignment[static_cast<std::size_t>(t % cores)].push_back(t);
  }
  return partition;
}

bool ExactlyRmSchedulable(const model::TaskSet& set,
                          const model::DvsModel& dvs,
                          const std::vector<model::TaskIndex>& tasks) {
  const model::TaskSet subset = mp::SubTaskSet(set, tasks);
  const fps::FullyPreemptiveSchedule expansion(subset);
  return sim::IsRmSchedulable(expansion, dvs);
}

TEST(ConsolidateFn, EmptiesCoresWithoutBreakingAdmission) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = LightSet(cpu, 8, 0.3, 11);
  const mp::Partition spread = SpreadPartition(set, 4);
  ASSERT_EQ(spread.used_cores(), 4);

  const model::IdlePower idle{0.5};
  const ReallocationResult result = Consolidate(spread, set, cpu, idle);
  result.partition.Validate(set);
  // 30% total utilisation spread over four cores: the floor saving beats
  // the packing penalty, so at least one core must empty.
  EXPECT_GT(result.migrations, 0);
  EXPECT_GT(result.emptied_cores, 0);
  EXPECT_EQ(result.partition.used_cores(),
            spread.used_cores() - result.emptied_cores);
  // Every surviving core still passes the partitioners' exact admission.
  for (int c = 0; c < result.partition.cores(); ++c) {
    const auto& tasks =
        result.partition.assignment[static_cast<std::size_t>(c)];
    if (!tasks.empty()) {
      EXPECT_TRUE(ExactlyRmSchedulable(set, cpu, tasks)) << "core " << c;
      EXPECT_LE(result.partition.CoreUtilization(set, cpu, c), 1.0 + 1e-12);
    }
  }
}

// The energy gate: consolidation only ever commits when the estimated
// floor saving beats the cubic dynamic penalty of packing.
TEST(ConsolidateFn, EnergyGateRefusesCostlyConsolidation) {
  const model::LinearDvsModel cpu = workload::DefaultModel();

  // Moderately loaded cores: feasible to merge at Vmax, but running the
  // merged core fast costs far more than one 0.5/ms floor saves.
  const model::TaskSet heavy = LightSet(cpu, 8, 2.0, 31);
  const mp::Partition spread = SpreadPartition(heavy, 4);
  const ReallocationResult refused =
      Consolidate(spread, heavy, cpu, model::IdlePower{0.5});
  EXPECT_EQ(refused.migrations, 0);
  EXPECT_EQ(refused.partition.assignment, spread.assignment);

  // A zero floor saves nothing, so nothing ever moves however light the
  // load is.
  const model::TaskSet light = LightSet(cpu, 8, 0.3, 11);
  const ReallocationResult zero_floor =
      Consolidate(SpreadPartition(light, 4), light, cpu, model::IdlePower{});
  EXPECT_EQ(zero_floor.migrations, 0);

  // A huge leakage floor justifies what 0.5/ms could not.
  const ReallocationResult big_floor =
      Consolidate(spread, heavy, cpu, model::IdlePower{100.0});
  EXPECT_GT(big_floor.migrations, 0);
}

TEST(ConsolidateFn, DeterministicAndIdempotentAtFixpoint) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = LightSet(cpu, 9, 0.4, 23);
  const mp::Partition spread = SpreadPartition(set, 3);
  const model::IdlePower idle{1.0};

  const ReallocationResult a = Consolidate(spread, set, cpu, idle);
  const ReallocationResult b = Consolidate(spread, set, cpu, idle);
  EXPECT_EQ(a.partition.assignment, b.partition.assignment);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_GT(a.migrations, 0);

  // Re-running on the consolidated partition finds nothing left to move.
  const ReallocationResult again = Consolidate(a.partition, set, cpu, idle);
  EXPECT_EQ(again.migrations, 0);
  EXPECT_EQ(again.partition.assignment, a.partition.assignment);
}

TEST(ConsolidateFn, NeverPowersAnEmptyCoreAndHandlesNoOpInputs) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = LightSet(cpu, 6, 0.2, 7);
  const model::IdlePower idle{0.5};

  // One core already empty: it must stay empty, and tasks only ever flow
  // onto cores that were powered in the input.
  mp::Partition partition;
  partition.assignment.resize(3);
  for (model::TaskIndex t = 0; t < set.size(); ++t) {
    partition.assignment[t % 2].push_back(t);  // core 2 stays empty
  }
  const ReallocationResult result = Consolidate(partition, set, cpu, idle);
  EXPECT_TRUE(result.partition.assignment[2].empty());

  // Single powered core: nothing to consolidate.
  mp::Partition single;
  single.assignment.resize(2);
  for (model::TaskIndex t = 0; t < set.size(); ++t) {
    single.assignment[0].push_back(t);
  }
  const ReallocationResult noop = Consolidate(single, set, cpu, idle);
  EXPECT_EQ(noop.migrations, 0);
  EXPECT_EQ(noop.partition.assignment, single.assignment);
}

}  // namespace
}  // namespace dvs::dpm
