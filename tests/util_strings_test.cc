#include "util/strings.h"

#include <gtest/gtest.h>

namespace dvs::util {
namespace {

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ";"), ';'), parts);
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StartsWith, Prefixes) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(FormatDouble, Decimals) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(1e6, 1), "1000000.0");
}

TEST(FormatPercent, FractionToPercent) {
  EXPECT_EQ(FormatPercent(0.5), "50.0%");
  EXPECT_EQ(FormatPercent(0.123, 2), "12.30%");
  EXPECT_EQ(FormatPercent(0.0), "0.0%");
  EXPECT_EQ(FormatPercent(1.0), "100.0%");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");  // never truncates
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_EQ(ToLower("123-ABC"), "123-abc");
}

}  // namespace
}  // namespace dvs::util
