// Tests for the Fig. 5 average-workload case analysis.
#include "core/case_analysis.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace dvs::core {
namespace {

TEST(CaseAnalysis, PaperFigure5Example) {
  // ACEC 15, three sub-instances with worst-case budgets 10 each:
  // averages must be 10 / 5 / 0 (paper's worked example).
  const AvgSplit split = SplitAverageWorkload(15.0, {10.0, 10.0, 10.0});
  ASSERT_EQ(split.avg.size(), 3u);
  EXPECT_DOUBLE_EQ(split.avg[0], 10.0);
  EXPECT_DOUBLE_EQ(split.avg[1], 5.0);
  EXPECT_DOUBLE_EQ(split.avg[2], 0.0);
  EXPECT_EQ(split.cases[0], AvgCase::kFull);
  EXPECT_EQ(split.cases[1], AvgCase::kPartial);
  EXPECT_EQ(split.cases[2], AvgCase::kEmpty);
}

TEST(CaseAnalysis, AveragesSumToAcec) {
  const AvgSplit split =
      SplitAverageWorkload(17.5, {4.0, 0.0, 6.0, 8.0, 12.0});
  double sum = 0.0;
  for (double a : split.avg) {
    sum += a;
  }
  EXPECT_DOUBLE_EQ(sum, 17.5);
}

TEST(CaseAnalysis, AcecEqualsWcecFillsEverything) {
  const AvgSplit split = SplitAverageWorkload(30.0, {10.0, 10.0, 10.0});
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(split.avg[k], 10.0);
    EXPECT_EQ(split.cases[k], AvgCase::kFull);
  }
}

TEST(CaseAnalysis, ZeroAcecFillsNothing) {
  const AvgSplit split = SplitAverageWorkload(0.0, {10.0, 10.0});
  EXPECT_DOUBLE_EQ(split.avg[0], 0.0);
  EXPECT_DOUBLE_EQ(split.avg[1], 0.0);
  EXPECT_EQ(split.cases[0], AvgCase::kEmpty);
}

TEST(CaseAnalysis, ZeroBudgetSubInstancesAreSkipped) {
  const AvgSplit split = SplitAverageWorkload(5.0, {0.0, 10.0});
  EXPECT_DOUBLE_EQ(split.avg[0], 0.0);
  EXPECT_DOUBLE_EQ(split.avg[1], 5.0);
  EXPECT_EQ(split.cases[1], AvgCase::kPartial);
}

TEST(CaseAnalysis, ExactBoundaryCountsAsFull) {
  // ACEC exactly equals the first budget: avg_0 == w_0 is case 1.
  const AvgSplit split = SplitAverageWorkload(10.0, {10.0, 5.0});
  EXPECT_EQ(split.cases[0], AvgCase::kFull);
  EXPECT_EQ(split.cases[1], AvgCase::kEmpty);
}

TEST(CaseAnalysis, SingleSubInstance) {
  const AvgSplit split = SplitAverageWorkload(7.0, {10.0});
  EXPECT_DOUBLE_EQ(split.avg[0], 7.0);
  EXPECT_EQ(split.cases[0], AvgCase::kPartial);
}

TEST(CaseAnalysis, RejectsBadInputs) {
  EXPECT_THROW(SplitAverageWorkload(5.0, {}), util::InvalidArgumentError);
  EXPECT_THROW(SplitAverageWorkload(-1.0, {10.0}),
               util::InvalidArgumentError);
  EXPECT_THROW(SplitAverageWorkload(5.0, {-2.0}),
               util::InvalidArgumentError);
}

}  // namespace
}  // namespace dvs::core
