#include "runner/run_grid.h"

#include <gtest/gtest.h>

#include "runner/experiment_grid.h"
#include "util/error.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::runner {
namespace {

/// Two harmonic tasks scaled to a comfortable utilisation — a fast fixed
/// set matching the default experiment processor.
model::TaskSet TinyFixedSet(const model::DvsModel& dvs) {
  model::Task a;
  a.name = "a";
  a.period = 10;
  a.wcec = 8.0;
  a.acec = 5.0;
  a.bcec = 2.0;
  model::Task b;
  b.name = "b";
  b.period = 20;
  b.wcec = 12.0;
  b.acec = 8.0;
  b.bcec = 4.0;
  return workload::ScaleToUtilization({a, b}, dvs, 0.6);
}

ExperimentGrid SmallGrid(const model::DvsModel& dvs) {
  // Tiny cells keep the full NLP solves test-sized: 2 tasks and a hard cap
  // on the expansion size.
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  gen.bcec_wcec_ratio = 0.3;
  gen.max_sub_instances = 24;

  ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {RandomSource("random-2", gen, 3),
                  FixedSource("tiny-fixed", TinyFixedSet(dvs))};
  grid.sigma_divisors = {6.0, 10.0};
  grid.workload_seeds = {0, 1};
  grid.methods = {"acs", "wcs", "static-vmax"};
  grid.hyper_periods = 10;
  grid.master_seed = 7;
  return grid;
}

TEST(ExperimentGrid, CellCountAndCoordRoundTrip) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = SmallGrid(cpu);
  // (3 replicates + 1 fixed) x 1 util x 2 sigmas x 2 seeds.
  ASSERT_EQ(grid.CellCount(), 16u);

  for (std::size_t i = 0; i < grid.CellCount(); ++i) {
    const CellCoord coord = grid.Coord(i);
    EXPECT_EQ(coord.cell_index, i);
    EXPECT_LT(coord.source, grid.sources.size());
    EXPECT_LT(coord.replicate, grid.sources[coord.source].Replicates());
    EXPECT_LT(coord.sigma_index, grid.sigma_divisors.size());
    EXPECT_LT(coord.seed_index, grid.workload_seeds.size());
  }
  // The last cell is the last replicate of the last source.
  const CellCoord last = grid.Coord(grid.CellCount() - 1);
  EXPECT_EQ(last.source, 1u);
  EXPECT_EQ(last.sigma_index, 1u);
  EXPECT_EQ(last.seed_index, 1u);
  EXPECT_THROW(grid.Coord(grid.CellCount()), util::InvalidArgumentError);
}

TEST(ExperimentGrid, UtilizationAxisSkipsFixedSources) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  ExperimentGrid grid = SmallGrid(cpu);
  grid.utilizations = {0.4, 0.6, 0.8};
  // Random source: 3 replicates x 3 utils x 2 sigmas x 2 seeds = 36 cells.
  // Fixed source ignores the utilization axis: 1 x 2 x 2 = 4 cells.
  ASSERT_EQ(grid.CellCount(), 40u);
  for (std::size_t i = 0; i < grid.CellCount(); ++i) {
    const CellCoord coord = grid.Coord(i);
    EXPECT_EQ(coord.cell_index, i);
    if (grid.sources[coord.source].fixed.has_value()) {
      EXPECT_EQ(coord.util_index, 0u) << "cell " << i;
    }
  }
}

TEST(ExperimentGrid, ValidateRejectsBadGrids) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const core::MethodRegistry& registry = core::MethodRegistry::Builtin();

  ExperimentGrid grid = SmallGrid(cpu);
  grid.Validate(registry);  // the baseline grid is fine

  ExperimentGrid no_dvs = SmallGrid(cpu);
  no_dvs.dvs = nullptr;
  EXPECT_THROW(no_dvs.Validate(registry), util::InvalidArgumentError);

  ExperimentGrid unknown_method = SmallGrid(cpu);
  unknown_method.methods = {"acs", "definitely-not-a-method"};
  EXPECT_THROW(unknown_method.Validate(registry), util::InvalidArgumentError);

  ExperimentGrid bad_baseline = SmallGrid(cpu);
  bad_baseline.methods = {"acs", "static-vmax"};  // baseline "wcs" missing
  EXPECT_THROW(bad_baseline.Validate(registry), util::InvalidArgumentError);
}

TEST(RunGrid, UnknownMethodFailsBeforeRunningCells) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  ExperimentGrid grid = SmallGrid(cpu);
  grid.methods = {"wcs", "no-such-method"};
  EXPECT_THROW(RunGrid(grid), util::InvalidArgumentError);
}

// The headline determinism guarantee: a multi-threaded run is bit-identical
// to the serial run, cell by cell, because every cell derives its rng stream
// from (master_seed, cell_index) alone and aggregation happens post-hoc in
// cell order.
TEST(RunGrid, FourThreadsBitIdenticalToOneThread) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = SmallGrid(cpu);

  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 4;

  const GridResult a = RunGrid(grid, serial);
  const GridResult b = RunGrid(grid, parallel);

  ASSERT_EQ(a.cells.size(), grid.CellCount());
  ASSERT_EQ(b.cells.size(), grid.CellCount());
  EXPECT_EQ(a.failed_cells, 0u);
  EXPECT_EQ(b.failed_cells, 0u);

  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const CellResult& ca = a.cells[i];
    const CellResult& cb = b.cells[i];
    ASSERT_EQ(ca.outcomes.size(), grid.methods.size()) << "cell " << i;
    ASSERT_EQ(cb.outcomes.size(), grid.methods.size()) << "cell " << i;
    EXPECT_EQ(ca.sub_instances, cb.sub_instances) << "cell " << i;
    for (std::size_t m = 0; m < grid.methods.size(); ++m) {
      // Bitwise equality, not near-equality: the parallel run must execute
      // the exact same arithmetic per cell.
      EXPECT_EQ(ca.outcomes[m].measured_energy, cb.outcomes[m].measured_energy)
          << "cell " << i << " method " << grid.methods[m];
      EXPECT_EQ(ca.outcomes[m].predicted_energy,
                cb.outcomes[m].predicted_energy)
          << "cell " << i << " method " << grid.methods[m];
      EXPECT_EQ(ca.outcomes[m].deadline_misses, cb.outcomes[m].deadline_misses)
          << "cell " << i << " method " << grid.methods[m];
    }
  }

  // Deterministic aggregates too: merged in cell order, independent of the
  // completion order.
  for (std::size_t m = 0; m < grid.methods.size(); ++m) {
    const MethodAggregate agg_a = a.Aggregate(grid, m);
    const MethodAggregate agg_b = b.Aggregate(grid, m);
    EXPECT_EQ(agg_a.measured_energy.count(), agg_b.measured_energy.count());
    EXPECT_EQ(agg_a.measured_energy.mean(), agg_b.measured_energy.mean());
    if (m != grid.BaselineIndex()) {
      EXPECT_EQ(agg_a.improvement.mean(), agg_b.improvement.mean());
    }
    EXPECT_EQ(agg_a.deadline_misses, agg_b.deadline_misses);
  }
}

TEST(RunGrid, RepeatedRunsAreIdentical) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  ExperimentGrid grid = SmallGrid(cpu);
  grid.sources = {grid.sources[1]};  // fixed set only: fast
  grid.sigma_divisors = {6.0};

  RunOptions options;
  options.threads = 2;
  const GridResult a = RunGrid(grid, options);
  const GridResult b = RunGrid(grid, options);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    for (std::size_t m = 0; m < grid.methods.size(); ++m) {
      EXPECT_EQ(a.cells[i].outcomes[m].measured_energy,
                b.cells[i].outcomes[m].measured_energy);
    }
  }
}

TEST(RunGrid, SinkSeesEveryCellAndAggregatesImprovement) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  ExperimentGrid grid = SmallGrid(cpu);
  grid.sources = {grid.sources[1]};  // fixed set
  grid.sigma_divisors = {6.0};

  ProgressSink sink;
  RunOptions options;
  options.threads = 2;
  options.sink = &sink;
  const GridResult result = RunGrid(grid, options);

  EXPECT_EQ(sink.completed(), grid.CellCount());
  EXPECT_EQ(sink.failed(), 0u);
  EXPECT_EQ(sink.MethodEnergy(0).count(), grid.CellCount());

  // static-vmax is the no-DVS ceiling, so its "improvement" over the
  // reclaiming WCS baseline is strictly negative.  (ACS-vs-WCS signs vary
  // on tiny sets — the paper's win needs task counts this test avoids.)
  const std::size_t acs = 0;
  const std::size_t vmax = 2;
  EXPECT_EQ(result.Aggregate(grid, acs).improvement.count(), grid.CellCount());
  EXPECT_LT(result.Aggregate(grid, vmax).improvement.mean(), 0.0);
  // Per-source filtering covers the single source.
  EXPECT_EQ(result.Aggregate(grid, acs, 0).measured_energy.count(),
            grid.CellCount());
}

// DESIGN.md §5's failure-cell contract: a cell whose task-set draw is
// infeasible records a util::Error on that cell, does not abort the grid,
// and is excluded from GridResult::Aggregate.
TEST(RunGrid, FailedCellsAreRecordedAndExcludedFromAggregates) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  workload::RandomTaskSetOptions doomed;
  doomed.num_tasks = 2;
  doomed.bcec_wcec_ratio = 0.5;
  doomed.max_sub_instances = 0;  // every draw rejected -> SolverError
  doomed.max_attempts = 3;

  ExperimentGrid grid = SmallGrid(cpu);
  grid.sources = {RandomSource("doomed", doomed, 2),
                  grid.sources[1]};  // the fixed set keeps succeeding
  grid.sigma_divisors = {6.0};
  grid.workload_seeds = {0};
  grid.methods = {"acs", "wcs"};

  ProgressSink sink;
  RunOptions options;
  options.threads = 2;
  options.sink = &sink;
  const GridResult result = RunGrid(grid, options);

  ASSERT_EQ(result.cells.size(), 3u);
  EXPECT_EQ(result.failed_cells, 2u);
  EXPECT_EQ(sink.failed(), 2u);
  EXPECT_EQ(sink.completed(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_FALSE(result.cells[i].ok());
    EXPECT_NE(result.cells[i].error.find("attempt budget"), std::string::npos)
        << result.cells[i].error;
    EXPECT_TRUE(result.cells[i].outcomes.empty());
  }
  EXPECT_TRUE(result.cells[2].ok());

  // Aggregates cover the surviving cell only.
  for (std::size_t m = 0; m < grid.methods.size(); ++m) {
    const MethodAggregate aggregate = result.Aggregate(grid, m);
    EXPECT_EQ(aggregate.measured_energy.count(), 1);
    EXPECT_GT(aggregate.measured_energy.mean(), 0.0);
  }
  // Per-source filtering sees zero successful cells for the doomed source.
  EXPECT_EQ(result.Aggregate(grid, 0, 0).measured_energy.count(), 0);
}

ExperimentGrid MultiCoreGrid(const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 5;
  gen.bcec_wcec_ratio = 0.3;
  gen.max_sub_instances = 40;  // pro-rata for the fleet demand

  ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {RandomSource("random-5", gen, 2)};
  grid.utilizations = {1.2};
  grid.core_counts = {2, 4};
  grid.partitioners = {"ffd", "wfd"};
  grid.idle_power.power_per_ms = 0.1;
  grid.methods = {"acs", "wcs"};
  grid.hyper_periods = 5;
  grid.master_seed = 11;
  return grid;
}

TEST(ExperimentGrid, MultiCoreAxesRoundTripAndShareTaskSets) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = MultiCoreGrid(cpu);
  // 2 replicates x 1 util x 2 cores x 2 partitioners.
  ASSERT_EQ(grid.CellCount(), 8u);
  for (std::size_t i = 0; i < grid.CellCount(); ++i) {
    const CellCoord coord = grid.Coord(i);
    EXPECT_EQ(coord.cell_index, i);
    EXPECT_LT(coord.core_index, grid.core_counts.size());
    EXPECT_LT(coord.partitioner_index, grid.partitioners.size());
  }
  // Cells differing only in the core/partitioner axes share the set index,
  // and with it a bit-identical task-set draw (paired comparisons).
  const CellCoord first = grid.Coord(0);
  const model::TaskSet reference = grid.MaterializeTaskSet(first);
  for (std::size_t i = 1; i < 4; ++i) {
    const CellCoord coord = grid.Coord(i);
    EXPECT_EQ(coord.replicate, first.replicate);
    EXPECT_EQ(grid.SetIndex(coord), grid.SetIndex(first));
    const model::TaskSet set = grid.MaterializeTaskSet(coord);
    ASSERT_EQ(set.size(), reference.size());
    for (std::size_t t = 0; t < set.size(); ++t) {
      EXPECT_EQ(set.task(t).wcec, reference.task(t).wcec);
      EXPECT_EQ(set.task(t).period, reference.task(t).period);
    }
  }
  // The next replicate draws a different set.
  EXPECT_NE(grid.SetIndex(grid.Coord(4)), grid.SetIndex(first));
}

TEST(ExperimentGrid, ValidateChecksMultiCoreAxes) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const core::MethodRegistry& registry = core::MethodRegistry::Builtin();

  ExperimentGrid grid = MultiCoreGrid(cpu);
  grid.Validate(registry);

  ExperimentGrid bad_partitioner = MultiCoreGrid(cpu);
  bad_partitioner.partitioners = {"ffd", "definitely-not-a-partitioner"};
  EXPECT_THROW(bad_partitioner.Validate(registry),
               util::InvalidArgumentError);

  ExperimentGrid bad_cores = MultiCoreGrid(cpu);
  bad_cores.core_counts = {2, 0};
  EXPECT_THROW(bad_cores.Validate(registry), util::InvalidArgumentError);

  ExperimentGrid too_demanding = MultiCoreGrid(cpu);
  too_demanding.utilizations = {4.5};  // above the 4-core fleet capacity
  EXPECT_THROW(too_demanding.Validate(registry), util::InvalidArgumentError);

  // Single-core grids keep the paper's (0, 1) admission.
  ExperimentGrid single = MultiCoreGrid(cpu);
  single.core_counts = {1};
  single.utilizations = {1.2};
  EXPECT_THROW(single.Validate(registry), util::InvalidArgumentError);
}

// The determinism guarantee extended to multi-core cells: an m=4 grid run
// on four threads is bit-identical to the serial run.
TEST(RunGrid, MultiCoreGridFourThreadsBitIdenticalToOneThread) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = MultiCoreGrid(cpu);

  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 4;

  const GridResult a = RunGrid(grid, serial);
  const GridResult b = RunGrid(grid, parallel);

  ASSERT_EQ(a.cells.size(), grid.CellCount());
  ASSERT_EQ(b.cells.size(), grid.CellCount());
  EXPECT_EQ(a.failed_cells, b.failed_cells);

  std::size_t succeeded = 0;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const CellResult& ca = a.cells[i];
    const CellResult& cb = b.cells[i];
    ASSERT_EQ(ca.ok(), cb.ok()) << "cell " << i;
    EXPECT_EQ(ca.error, cb.error) << "cell " << i;
    if (!ca.ok()) {
      continue;
    }
    ++succeeded;
    EXPECT_EQ(ca.sub_instances, cb.sub_instances) << "cell " << i;
    ASSERT_EQ(ca.outcomes.size(), grid.methods.size()) << "cell " << i;
    for (std::size_t m = 0; m < grid.methods.size(); ++m) {
      EXPECT_EQ(ca.outcomes[m].measured_energy, cb.outcomes[m].measured_energy)
          << "cell " << i << " method " << grid.methods[m];
      EXPECT_EQ(ca.outcomes[m].predicted_energy,
                cb.outcomes[m].predicted_energy)
          << "cell " << i << " method " << grid.methods[m];
      EXPECT_EQ(ca.outcomes[m].deadline_misses, cb.outcomes[m].deadline_misses)
          << "cell " << i << " method " << grid.methods[m];
    }
  }
  // The grid must actually exercise the fleet path.
  EXPECT_GT(succeeded, 0u);
}

ExperimentGrid ScenarioGrid(const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  gen.bcec_wcec_ratio = 0.3;
  gen.max_sub_instances = 24;

  ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {RandomSource("random-2", gen, 1),
                  FixedSource("tiny-fixed", TinyFixedSet(dvs))};
  grid.scenarios = workload::ScenarioRegistry::Builtin().Names();
  // A scenario-conditioned arm rides along so the thread/workspace
  // bit-equality below also covers calibration + the value-keyed planned
  // solve cache (whose hits depend on which worker ran the sibling cell).
  grid.methods = {"acs", "wcs", "acs-scenario"};
  grid.planning.calibration_samples = 128;
  grid.hyper_periods = 5;
  grid.master_seed = 19;
  return grid;
}

TEST(ExperimentGrid, ScenarioAxisRoundTripsAndSharesStreams) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = ScenarioGrid(cpu);
  // 2 sources x 6 scenarios.
  ASSERT_EQ(grid.CellCount(), 12u);
  for (std::size_t i = 0; i < grid.CellCount(); ++i) {
    const CellCoord coord = grid.Coord(i);
    EXPECT_EQ(coord.cell_index, i);
    EXPECT_LT(coord.scenario_index, grid.scenarios.size());
  }
  // Cells differing only on the scenario axis share the set index — and
  // through it both the task-set draw and the workload-seed label (the
  // paired-draw seeding contract).
  const CellCoord first = grid.Coord(0);
  const ExperimentGrid::CellStreams reference = grid.Streams(first);
  for (std::size_t i = 1; i < grid.scenarios.size(); ++i) {
    const CellCoord coord = grid.Coord(i);
    EXPECT_EQ(coord.scenario_index, i);
    EXPECT_EQ(grid.SetIndex(coord), grid.SetIndex(first));
    EXPECT_EQ(grid.Streams(coord).workload_seed, reference.workload_seed);
  }
}

TEST(ExperimentGrid, ValidateChecksScenarioAxis) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const core::MethodRegistry& registry = core::MethodRegistry::Builtin();

  ExperimentGrid grid = ScenarioGrid(cpu);
  grid.Validate(registry);

  ExperimentGrid unknown = ScenarioGrid(cpu);
  unknown.scenarios = {"iid-normal", "definitely-not-a-scenario"};
  EXPECT_THROW(unknown.Validate(registry), util::InvalidArgumentError);

  ExperimentGrid empty = ScenarioGrid(cpu);
  empty.scenarios = {};
  EXPECT_THROW(empty.Validate(registry), util::InvalidArgumentError);

  // A custom registry resolves names the built-ins lack.
  workload::ScenarioRegistry custom;
  workload::RegisterBuiltinScenarios(custom);
  custom.Register("my-trace", "test trace",
                  workload::MakeTraceScenario({0.5}));
  ExperimentGrid with_custom = ScenarioGrid(cpu);
  with_custom.scenario_registry = &custom;
  with_custom.scenarios = {"iid-normal", "my-trace"};
  with_custom.Validate(registry);
}

// The determinism guarantee on the scenarios axis: every scenario's cells
// are bit-identical between a 4-thread and a 1-thread run, and between a
// fresh-workspace and a reused-workspace run.
TEST(RunGrid, ScenarioAxisBitIdenticalAcrossThreadsAndWorkspaces) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = ScenarioGrid(cpu);

  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 4;
  // Reused workspaces: the same vector serves two consecutive runs, so the
  // second run hits every per-set solve cache warm.
  std::vector<core::EvalWorkspace> workspaces;
  RunOptions reused;
  reused.threads = 1;
  reused.workspaces = &workspaces;

  const GridResult a = RunGrid(grid, serial);
  const GridResult b = RunGrid(grid, parallel);
  RunGrid(grid, reused);  // warm the workspaces
  const GridResult c = RunGrid(grid, reused);

  ASSERT_EQ(a.cells.size(), grid.CellCount());
  EXPECT_EQ(a.failed_cells, 0u);
  for (const GridResult* other : {&b, &c}) {
    ASSERT_EQ(other->cells.size(), a.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
      const CellResult& ca = a.cells[i];
      const CellResult& cb = other->cells[i];
      const std::string& scenario =
          grid.scenarios[ca.coord.scenario_index];
      ASSERT_EQ(ca.outcomes.size(), cb.outcomes.size())
          << "cell " << i << " (" << scenario << ")";
      for (std::size_t m = 0; m < ca.outcomes.size(); ++m) {
        EXPECT_EQ(ca.outcomes[m].measured_energy,
                  cb.outcomes[m].measured_energy)
            << "cell " << i << " (" << scenario << ") method "
            << grid.methods[m];
        EXPECT_EQ(ca.outcomes[m].predicted_energy,
                  cb.outcomes[m].predicted_energy)
            << "cell " << i << " (" << scenario << ") method "
            << grid.methods[m];
        EXPECT_EQ(ca.outcomes[m].deadline_misses,
                  cb.outcomes[m].deadline_misses)
            << "cell " << i << " (" << scenario << ") method "
            << grid.methods[m];
      }
    }
  }

  // Scenarios genuinely differ: on the shared task set and seed, at least
  // one scenario's ACS energy departs from the iid-normal cell's.
  bool any_difference = false;
  for (std::size_t i = 1; i < grid.scenarios.size(); ++i) {
    if (a.cells[i].outcomes[0].measured_energy !=
        a.cells[0].outcomes[0].measured_energy) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

// The registry's iid-normal scenario is byte-identical to the
// null-scenario fallback (the pre-scenario pipeline): RunGrid always
// resolves a registry entry, so the guarantee that matters is at the
// EvaluateMethod level, where options.scenario == nullptr takes the
// legacy TruncatedNormalWorkload path directly.
TEST(RunGrid, IidNormalScenarioMatchesDefaultPipeline) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = TinyFixedSet(cpu);
  const fps::FullyPreemptiveSchedule fps(set);
  const core::MethodRegistry& methods = core::MethodRegistry::Builtin();

  core::ExperimentOptions options;  // outlives both contexts below
  options.hyper_periods = 10;
  options.seed = 5;

  for (const char* name : {"acs", "wcs", "greedy-reclaim"}) {
    const core::ScheduleMethod& method = methods.Get(name);

    core::MethodContext legacy_context(fps, cpu, options.scheduler);
    options.scenario = nullptr;  // the pre-scenario pipeline
    const core::MethodOutcome legacy =
        EvaluateMethod(method, legacy_context, options);

    core::MethodContext scenario_context(fps, cpu, options.scheduler);
    options.scenario =
        &workload::ScenarioRegistry::Builtin().Get("iid-normal");
    const core::MethodOutcome via_registry =
        EvaluateMethod(method, scenario_context, options);

    EXPECT_EQ(legacy.measured_energy, via_registry.measured_energy) << name;
    EXPECT_EQ(legacy.predicted_energy, via_registry.predicted_energy)
        << name;
    EXPECT_EQ(legacy.deadline_misses, via_registry.deadline_misses) << name;
  }
}

// Determinism with the online arms and mid-run drift replanning enabled:
// a 4-thread run is bit-identical to the serial run.  Drift replans happen
// inside a cell's evaluation from state derived only from (master_seed,
// cell_index) — the EWMA is fed by the cell's own realised cycles and the
// recalibration draws from the cell's seeded streams — so which worker
// executes the cell cannot change the arithmetic.
TEST(RunGrid, OnlineDriftReplanningFourThreadsBitIdenticalToOneThread) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  ExperimentGrid grid = ScenarioGrid(cpu);
  grid.methods = {"acs-online", "wcs", "acs-online-drift"};
  // Volatile scenarios plus a hair-trigger detector: the drift arm must
  // actually replan mid-run, not just carry the knob.
  grid.scenarios = {"heavy-tail", "correlated", "bursty"};
  grid.online.drift_threshold = 0.05;
  grid.online.drift_ewma = 0.5;
  grid.hyper_periods = 8;

  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 4;

  const GridResult a = RunGrid(grid, serial);
  const GridResult b = RunGrid(grid, parallel);

  ASSERT_EQ(a.cells.size(), grid.CellCount());
  ASSERT_EQ(b.cells.size(), grid.CellCount());
  EXPECT_EQ(a.failed_cells, 0u);
  EXPECT_EQ(b.failed_cells, 0u);
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const CellResult& ca = a.cells[i];
    const CellResult& cb = b.cells[i];
    ASSERT_EQ(ca.outcomes.size(), grid.methods.size()) << "cell " << i;
    ASSERT_EQ(cb.outcomes.size(), grid.methods.size()) << "cell " << i;
    for (std::size_t m = 0; m < grid.methods.size(); ++m) {
      EXPECT_EQ(ca.outcomes[m].measured_energy, cb.outcomes[m].measured_energy)
          << "cell " << i << " method " << grid.methods[m];
      EXPECT_EQ(ca.outcomes[m].predicted_energy,
                cb.outcomes[m].predicted_energy)
          << "cell " << i << " method " << grid.methods[m];
      EXPECT_EQ(ca.outcomes[m].deadline_misses, cb.outcomes[m].deadline_misses)
          << "cell " << i << " method " << grid.methods[m];
    }
  }
}

TEST(RunGrid, UtilizationAxisAppliesToRandomSources) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  gen.bcec_wcec_ratio = 0.5;
  gen.max_sub_instances = 24;

  ExperimentGrid grid;
  grid.dvs = &cpu;
  grid.sources = {RandomSource("random-2", gen, 2)};
  grid.utilizations = {0.4, 0.8};
  grid.methods = {"wcs", "static-vmax"};
  grid.baseline = "wcs";
  grid.hyper_periods = 10;

  const GridResult result = RunGrid(grid, RunOptions{});
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.failed_cells, 0u);
  // The utilisation axis must reach the generator: the materialised task
  // set of every cell carries the axis value, not the source default.
  // (Cells at different axis positions are independent draws — the grid
  // seeds by cell index — so cross-cell energy comparisons would be a
  // seed lottery; this structural check is what the axis guarantees.)
  for (std::size_t replicate = 0; replicate < 2; ++replicate) {
    const CellResult& low = result.cells[replicate * 2 + 0];
    const CellResult& high = result.cells[replicate * 2 + 1];
    ASSERT_EQ(low.coord.util_index, 0u);
    ASSERT_EQ(high.coord.util_index, 1u);
    EXPECT_NEAR(grid.MaterializeTaskSet(low.coord).Utilization(cpu), 0.4,
                1e-6);
    EXPECT_NEAR(grid.MaterializeTaskSet(high.coord).Utilization(cpu), 0.8,
                1e-6);
  }
}

}  // namespace
}  // namespace dvs::runner
