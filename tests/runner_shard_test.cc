// Sharded-run contract: splitting a grid across shards and merging the
// shard CSVs must reproduce the unsharded serial run byte-for-byte.
//
// The end-to-end test runs the golden smoke grid unsharded (serial) and as
// two shards (each on two worker threads — the merge's cell-index sort is
// what restores serial row order, so multi-threaded shards are the honest
// exercise), then byte-compares the merged text against the unsharded
// file.  A second end-to-end run pins the same contract for the planning
// arms with neighbor warm starts and the solver-stats columns on — the
// chain and the counters are defined by grid coordinates alone, so
// sharding cannot move a byte.  Synthetic ShardCsv inputs cover the merge
// error taxonomy (header drift, overlapping shards, coverage gaps).
#include "runner/shard.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/solve_store.h"
#include "runner/csv_sink.h"
#include "runner/experiment_grid.h"
#include "runner/run_grid.h"
#include "util/error.h"
#include "util/json.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::runner {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string FreshPath(const std::string& stem) {
  return ::testing::TempDir() + stem + "." +
         std::to_string(static_cast<long long>(::getpid())) + ".csv";
}

model::TaskSet TinyFixedSet(const model::DvsModel& dvs) {
  model::Task a;
  a.name = "a";
  a.period = 10;
  a.wcec = 8.0;
  a.acec = 5.0;
  a.bcec = 2.0;
  model::Task b;
  b.name = "b";
  b.period = 20;
  b.wcec = 12.0;
  b.acec = 8.0;
  b.bcec = 4.0;
  return workload::ScaleToUtilization({a, b}, dvs, 0.6);
}

/// The golden smoke grid (tests/runner_golden_csv_test.cc): three task
/// sets, so a 2-shard split lands 1 + 2 sets — an uneven division, the
/// interesting case.
ExperimentGrid SmokeGrid(const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  gen.bcec_wcec_ratio = 0.3;
  gen.max_sub_instances = 24;

  ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {RandomSource("random-2", gen, 2),
                  FixedSource("tiny-fixed", TinyFixedSet(dvs))};
  grid.sigma_divisors = {6.0, 10.0};
  grid.workload_seeds = {0, 1};
  grid.methods = {"acs", "wcs", "static-vmax"};
  grid.hyper_periods = 10;
  grid.master_seed = 7;
  return grid;
}

/// A slim planning grid with a 2-point sigma axis: neighbor warm starts
/// actually chain, and the solver-stats columns carry per-link counters.
ExperimentGrid WarmPlanningGrid(const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 3;
  gen.bcec_wcec_ratio = 0.3;
  gen.max_sub_instances = 24;

  ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {RandomSource("random-3", gen, 1),
                  FixedSource("tiny-fixed", TinyFixedSet(dvs))};
  grid.scenarios = {"iid-normal", "heavy-tail"};
  grid.sigma_divisors = {5.0, 8.0};
  grid.methods = {"acs", "acs-scenario", "acs-quantile"};
  grid.baseline = "acs";
  grid.planning.calibration_samples = 64;
  grid.warm_start = core::WarmStartPolicy::kNeighbor;
  grid.hyper_periods = 10;
  grid.master_seed = 11;
  return grid;
}

struct GridRunArtifacts {
  std::string unsharded;              // full serial CSV text
  std::vector<std::string> shards;    // per-shard CSV texts
  std::size_t unsharded_rows = 0;
  std::size_t shard_rows = 0;
};

GridRunArtifacts RunUnshardedAndSharded(const ExperimentGrid& grid,
                                        bool scenario_column,
                                        bool solver_stats,
                                        std::size_t shard_count) {
  GridRunArtifacts artifacts;

  const std::string full_path = FreshPath("shard_test_unsharded");
  {
    CsvSink sink(full_path, scenario_column, solver_stats);
    RunOptions options;
    options.threads = 1;  // serial: the reference row order
    options.sink = &sink;
    const GridResult result = RunGrid(grid, options);
    EXPECT_EQ(result.failed_cells, 0u);
    artifacts.unsharded_rows = sink.rows();
  }
  artifacts.unsharded = ReadFile(full_path);
  std::remove(full_path.c_str());

  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    const std::string path =
        FreshPath("shard_test_part" + std::to_string(shard));
    {
      CsvSink sink(path, scenario_column, solver_stats);
      RunOptions options;
      options.threads = 2;  // out-of-order rows; the merge must fix it
      options.sink = &sink;
      options.shard_index = shard;
      options.shard_count = shard_count;
      const GridResult result = RunGrid(grid, options);
      EXPECT_EQ(result.failed_cells, 0u);
      artifacts.shard_rows += sink.rows();
    }
    artifacts.shards.push_back(ReadFile(path));
    std::remove(path.c_str());
  }
  return artifacts;
}

ShardCsv ParseText(const std::string& text) {
  const std::string path = FreshPath("shard_test_text");
  {
    std::ofstream out(path, std::ios::binary);
    out << text;
  }
  ShardCsv shard = ParseShardCsv(path);
  std::remove(path.c_str());
  return shard;
}

TEST(RunnerShard, TwoShardMergeByteIdenticalToUnshardedSerialRun) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = SmokeGrid(cpu);
  const GridRunArtifacts artifacts = RunUnshardedAndSharded(
      grid, /*scenario_column=*/false, /*solver_stats=*/false,
      /*shard_count=*/2);

  ASSERT_EQ(artifacts.shard_rows, artifacts.unsharded_rows)
      << "shards must cover the grid exactly once";
  std::vector<ShardCsv> shards;
  for (const std::string& text : artifacts.shards) {
    shards.push_back(ParseText(text));
  }
  EXPECT_EQ(MergeShardCsvs(shards), artifacts.unsharded);
}

TEST(RunnerShard, WarmStartedPlanningGridMergesByteIdenticalWithStats) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = WarmPlanningGrid(cpu);
  const GridRunArtifacts artifacts = RunUnshardedAndSharded(
      grid, /*scenario_column=*/true, /*solver_stats=*/true,
      /*shard_count=*/2);

  ASSERT_EQ(artifacts.shard_rows, artifacts.unsharded_rows);
  std::vector<ShardCsv> shards;
  for (const std::string& text : artifacts.shards) {
    shards.push_back(ParseText(text));
  }
  EXPECT_EQ(MergeShardCsvs(shards), artifacts.unsharded);
}

TEST(RunnerShard, SingleShardRoundTripsThroughTheFileApi) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = SmokeGrid(cpu);

  const std::string path = FreshPath("shard_test_single");
  {
    CsvSink sink(path);
    RunOptions options;
    options.threads = 1;
    options.sink = &sink;
    RunGrid(grid, options);
  }
  const std::string merged_path = FreshPath("shard_test_single_merged");
  const std::size_t rows = MergeShardCsvFiles({path}, merged_path);
  EXPECT_EQ(ReadFile(merged_path), ReadFile(path));
  EXPECT_EQ(rows, grid.CellCount() * grid.methods.size());
  std::remove(path.c_str());
  std::remove(merged_path.c_str());
}

TEST(RunnerShard, RunGridRejectsInvalidShardOptions) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = SmokeGrid(cpu);
  RunOptions options;
  options.shard_count = 0;
  EXPECT_THROW(RunGrid(grid, options), util::Error);
  options.shard_count = 2;
  options.shard_index = 2;
  EXPECT_THROW(RunGrid(grid, options), util::Error);
}

TEST(RunnerShard, SkippedCellsCarryNoOutcomesAndNoFailures) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = SmokeGrid(cpu);
  RunOptions options;
  options.threads = 1;
  options.shard_index = 0;
  options.shard_count = 2;
  const GridResult result = RunGrid(grid, options);
  EXPECT_EQ(result.failed_cells, 0u);
  std::size_t evaluated = 0;
  std::size_t skipped = 0;
  for (const CellResult& cell : result.cells) {
    if (cell.skipped) {
      ++skipped;
      EXPECT_TRUE(cell.outcomes.empty());
      EXPECT_TRUE(cell.error.empty());
    } else {
      ++evaluated;
      EXPECT_EQ(cell.outcomes.size(), grid.methods.size());
    }
  }
  EXPECT_GT(evaluated, 0u);
  EXPECT_GT(skipped, 0u);
  EXPECT_EQ(evaluated + skipped, grid.CellCount());
}

// ---- merge error taxonomy, on synthetic inputs -----------------------------

ShardCsv Synthetic(const std::string& header,
                   const std::vector<std::string>& rows) {
  ShardCsv shard;
  shard.header = header;
  for (const std::string& row : rows) {
    shard.cells.push_back(static_cast<std::size_t>(std::stoul(row)));
    shard.rows.push_back(row);
  }
  return shard;
}

TEST(RunnerShard, MergeRejectsDisagreeingHeaders) {
  const ShardCsv a = Synthetic("cell_index,x", {"0,1"});
  const ShardCsv b = Synthetic("cell_index,y", {"1,2"});
  EXPECT_THROW(MergeShardCsvs({a, b}), util::Error);
}

TEST(RunnerShard, MergeRejectsOverlappingShards) {
  const ShardCsv a = Synthetic("h", {"0,a", "1,a"});
  const ShardCsv b = Synthetic("h", {"1,b", "2,b"});
  try {
    MergeShardCsvs({a, b});
    FAIL() << "overlap not detected";
  } catch (const util::Error& error) {
    EXPECT_NE(std::string(error.what()).find("more than one shard"),
              std::string::npos)
        << error.what();
  }
}

TEST(RunnerShard, MergeRejectsCoverageGaps) {
  const ShardCsv a = Synthetic("h", {"0,a"});
  const ShardCsv b = Synthetic("h", {"2,b"});  // cell 1 missing
  try {
    MergeShardCsvs({a, b});
    FAIL() << "gap not detected";
  } catch (const util::Error& error) {
    EXPECT_NE(std::string(error.what()).find("missing cell"),
              std::string::npos)
        << error.what();
  }
}

TEST(RunnerShard, MergeKeepsPerCellRowOrderAcrossOutOfOrderShards) {
  // Shard files arrive with cells out of order (threads > 1); the merge
  // sorts by cell but must keep each cell's method rows in file order.
  const ShardCsv a = Synthetic("h", {"2,first", "2,second", "0,first"});
  const ShardCsv b = Synthetic("h", {"1,first", "1,second"});
  const std::string merged = MergeShardCsvs({a, b});
  EXPECT_EQ(merged,
            "h\n0,first\n1,first\n1,second\n2,first\n2,second\n");
}

// ---- telemetry artifact merging alongside the CSVs -------------------------

/// One shard's full artifact set, produced exactly as tools/shard_grid
/// does it: registry + recorder installed around the sharded RunGrid.
struct ShardTelemetry {
  std::string manifest;
  std::string trace;
};

ShardTelemetry RunShardWithTelemetry(const ExperimentGrid& grid,
                                     std::size_t shard,
                                     std::size_t shard_count) {
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  obs::InstallMetrics(&metrics);
  obs::TraceRecorder::Install(&trace);
  {
    RunOptions options;
    options.threads = 2;
    options.shard_index = shard;
    options.shard_count = shard_count;
    const GridResult result = RunGrid(grid, options);
    EXPECT_EQ(result.failed_cells, 0u);
  }
  obs::TraceRecorder::Install(nullptr);
  obs::InstallMetrics(nullptr);

  obs::RunManifest manifest;
  manifest.tool = "runner_shard_test";
  manifest.master_seed = grid.master_seed;
  manifest.threads = 2;
  manifest.shard_index = shard;
  manifest.shard_count = shard_count;
  manifest.wall_ms = 1.0;
  manifest.config = {{"grid", "smoke"}};
  ShardTelemetry artifacts;
  artifacts.manifest = obs::RenderManifest(manifest, &metrics);
  artifacts.trace =
      trace.RenderChromeTrace(static_cast<std::uint32_t>(shard));
  return artifacts;
}

TEST(RunnerShard, TelemetryArtifactsMergeAlongsideTheCsvs) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = SmokeGrid(cpu);
  const ShardTelemetry s0 = RunShardWithTelemetry(grid, 0, 2);
  const ShardTelemetry s1 = RunShardWithTelemetry(grid, 1, 2);

  // Manifests recombine; the merged metrics cover the whole grid — cell
  // counts are result-charged, so the sum is exact.
  const util::JsonValue merged =
      util::ParseJson(obs::MergeManifests({s0.manifest, s1.manifest}));
  EXPECT_EQ(merged.At("shards").array.size(), 2u);
  EXPECT_DOUBLE_EQ(
      merged.At("metrics").At("counters").NumberAt("grid.cells_evaluated"),
      static_cast<double>(grid.CellCount()));

  // Traces recombine with one process group per shard.
  const util::JsonValue trace =
      util::ParseJson(obs::MergeChromeTraces({s0.trace, s1.trace}, {0, 1}));
  ASSERT_FALSE(trace.At("traceEvents").array.empty());

  // The error taxonomy the merge tool surfaces:
  // (1) the same shard twice is a double merge, not a silent overwrite;
  try {
    obs::MergeManifests({s0.manifest, s0.manifest});
    FAIL() << "double merge not detected";
  } catch (const util::Error& error) {
    EXPECT_NE(std::string(error.what()).find("double merge"),
              std::string::npos)
        << error.what();
  }
  // (2) a lost shard is a coverage gap;
  try {
    obs::MergeManifests({s1.manifest});
    FAIL() << "missing shard not detected";
  } catch (const util::Error& error) {
    EXPECT_NE(std::string(error.what()).find("missing shard"),
              std::string::npos)
        << error.what();
  }
  // (3) shards from different runs conflict instead of merging;
  ExperimentGrid other = SmokeGrid(cpu);
  other.master_seed = 8;
  const ShardTelemetry foreign = RunShardWithTelemetry(other, 1, 2);
  try {
    obs::MergeManifests({s0.manifest, foreign.manifest});
    FAIL() << "conflicting manifests not detected";
  } catch (const util::Error& error) {
    EXPECT_NE(std::string(error.what()).find("conflict"), std::string::npos)
        << error.what();
  }
  // (4) a missing shard trace (pid list out of step) is a hard error, as
  // is a trace file that is not a trace document.
  EXPECT_THROW(obs::MergeChromeTraces({s0.trace, s1.trace}, {0}),
               util::Error);
  EXPECT_THROW(obs::MergeChromeTraces({"{}"}, {0}), util::Error);
}

TEST(RunnerShard, HeaderOnlyShardAndMissingTrailingNewlineMerge) {
  // A shard handed a set range past the grid's set count evaluates nothing
  // and writes only the CSV header; hand-truncated or foreign files may
  // additionally lack the trailing newline.  Both parse, the empty shard
  // contributes zero rows to the merge, and the merged text is normalized
  // (every line newline-terminated) regardless of the inputs.
  const std::string empty_path = FreshPath("shard_header_only");
  const std::string full_path = FreshPath("shard_no_trailing_newline");
  {
    std::ofstream out(empty_path, std::ios::binary);
    out << "h";  // header only, no trailing newline
  }
  {
    std::ofstream out(full_path, std::ios::binary);
    out << "h\n0,a\n1,b";  // last row unterminated
  }
  const ShardCsv empty = ParseShardCsv(empty_path);
  EXPECT_EQ(empty.header, "h");
  EXPECT_TRUE(empty.rows.empty());
  const ShardCsv full = ParseShardCsv(full_path);
  ASSERT_EQ(full.rows.size(), 2u);
  EXPECT_EQ(full.rows.back(), "1,b");
  EXPECT_EQ(MergeShardCsvs({empty, full}), "h\n0,a\n1,b\n");

  // Same through the file API: the row count excludes the empty shard.
  const std::string merged_path = FreshPath("shard_header_only_merged");
  EXPECT_EQ(MergeShardCsvFiles({empty_path, full_path}, merged_path), 2u);
  EXPECT_EQ(ReadFile(merged_path), "h\n0,a\n1,b\n");
  std::remove(empty_path.c_str());
  std::remove(full_path.c_str());
  std::remove(merged_path.c_str());
}

/// A metrics-free shard manifest for the synthetic merge tests.
std::string RenderPlainManifest(std::size_t shard, std::size_t count) {
  obs::RunManifest manifest;
  manifest.tool = "runner_shard_test";
  manifest.master_seed = 7;
  manifest.threads = 1;
  manifest.shard_index = shard;
  manifest.shard_count = count;
  manifest.wall_ms = 1.0;
  manifest.config = {{"grid", "smoke"}};
  return obs::RenderManifest(manifest, nullptr);
}

TEST(RunnerShard, ManifestMergeAcceptsAnEmptyShardList) {
  // The manifest companion of the header-only CSV: a shard that covered no
  // cells may legitimately report an empty "shards" list.  It folds its
  // measurements without claiming an index; coverage is still enforced
  // over the other inputs.
  const std::string s0 = RenderPlainManifest(0, 2);
  const std::string s1 = RenderPlainManifest(1, 2);
  std::string empty = RenderPlainManifest(0, 2);
  const std::string needle = "\"shards\":[0]";
  const std::size_t pos = empty.find(needle);
  ASSERT_NE(pos, std::string::npos);
  empty.replace(pos, needle.size(), "\"shards\":[]");

  const util::JsonValue merged =
      util::ParseJson(obs::MergeManifests({s0, empty, s1}));
  ASSERT_EQ(merged.At("shards").array.size(), 2u);
  EXPECT_DOUBLE_EQ(merged.At("shards").array[0].number, 0.0);
  EXPECT_DOUBLE_EQ(merged.At("shards").array[1].number, 1.0);
  // All three wall clocks folded, the empty shard's included.
  EXPECT_DOUBLE_EQ(merged.At("run").NumberAt("wall_ms"), 3.0);
}

TEST(RunnerShard, ManifestMergeRejectsNullMetricValues) {
  // A non-finite metric serialises as null (util::JsonWriter); folding it
  // as 0 would silently understate the merged totals, so the merge refuses
  // and names the metric.
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = SmokeGrid(cpu);
  const ShardTelemetry s0 = RunShardWithTelemetry(grid, 0, 2);
  const ShardTelemetry s1 = RunShardWithTelemetry(grid, 1, 2);
  std::string corrupted = s1.manifest;
  const std::string needle = "\"grid.cells_evaluated\":";
  const std::size_t pos = corrupted.find(needle);
  ASSERT_NE(pos, std::string::npos);
  const std::size_t value_at = pos + needle.size();
  const std::size_t value_end = corrupted.find_first_of(",}", value_at);
  ASSERT_NE(value_end, std::string::npos);
  corrupted.replace(value_at, value_end - value_at, "null");

  try {
    obs::MergeManifests({s0.manifest, corrupted});
    FAIL() << "null metric not rejected";
  } catch (const util::Error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("finite"), std::string::npos) << what;
    EXPECT_NE(what.find("grid.cells_evaluated"), std::string::npos) << what;
  }
}

TEST(RunnerShard, ParseRejectsMissingAndMalformedFiles) {
  EXPECT_THROW(ParseShardCsv(FreshPath("shard_test_nonexistent")),
               util::Error);
  const std::string path = FreshPath("shard_test_malformed");
  {
    std::ofstream out(path, std::ios::binary);
    out << "header\nnot-a-cell-index,1\n";
  }
  EXPECT_THROW(ParseShardCsv(path), util::Error);
  std::remove(path.c_str());
}

// --------------------------------------------- shard x cache-dir interplay

std::string FreshCacheDir(const std::string& stem) {
  return ::testing::TempDir() + stem + "." +
         std::to_string(static_cast<long long>(::getpid()));
}

/// Empties a store directory so repeated test-binary runs stay cold.
void PurgeCacheDir(const std::string& dir) {
  core::SolveStore store(dir);
  for (std::uint64_t key : store.DiskKeys()) {
    std::remove(store.EntryPath(key).c_str());
  }
}

/// One shard of `grid` on 2 threads with `store` attached (may be null);
/// returns the shard's CSV text.
std::string RunShardWithStore(const ExperimentGrid& grid, std::size_t shard,
                              std::size_t shard_count,
                              core::SolveStore* store) {
  const std::string path =
      FreshPath("shard_cache_part" + std::to_string(shard));
  {
    CsvSink sink(path, /*scenario_column=*/true,
                 /*solver_stats_columns=*/true);
    RunOptions options;
    options.threads = 2;
    options.sink = &sink;
    options.shard_index = shard;
    options.shard_count = shard_count;
    options.solve_store = store;
    const GridResult result = RunGrid(grid, options);
    EXPECT_EQ(result.failed_cells, 0u);
  }
  std::string text = ReadFile(path);
  std::remove(path.c_str());
  return text;
}

TEST(RunnerShardCache, PerShardCacheDirsMergeAndWarmRerunByteIdentical) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = WarmPlanningGrid(cpu);

  // Reference: unsharded serial run, no cache.
  const std::string reference_path = FreshPath("shard_cache_reference");
  {
    CsvSink sink(reference_path, /*scenario_column=*/true,
                 /*solver_stats_columns=*/true);
    RunOptions options;
    options.threads = 1;
    options.sink = &sink;
    const GridResult result = RunGrid(grid, options);
    EXPECT_EQ(result.failed_cells, 0u);
  }
  const std::string reference = ReadFile(reference_path);
  std::remove(reference_path.c_str());

  // Cold sharded run, each shard its own writable dir: the merge is still
  // byte-identical to the cache-free serial run.
  const std::string dir0 = FreshCacheDir("shard_cache_dir0");
  const std::string dir1 = FreshCacheDir("shard_cache_dir1");
  PurgeCacheDir(dir0);
  PurgeCacheDir(dir1);
  std::vector<std::string> cold_texts;
  {
    core::SolveStore store0(dir0);
    cold_texts.push_back(RunShardWithStore(grid, 0, 2, &store0));
    EXPECT_GT(store0.WriteBack(), 0u);
  }
  {
    core::SolveStore store1(dir1);
    cold_texts.push_back(RunShardWithStore(grid, 1, 2, &store1));
    EXPECT_GT(store1.WriteBack(), 0u);
  }
  EXPECT_EQ(MergeShardCsvs({ParseText(cold_texts[0]), ParseText(cold_texts[1])}),
            reference);

  // Warm re-run of shard 0 through a fresh store over its populated dir:
  // the pre-seeded solves move no byte.
  {
    core::SolveStore warm(dir0);
    EXPECT_EQ(RunShardWithStore(grid, 0, 2, &warm), cold_texts[0]);
  }

  // Shared read-only pre-seed: both shards over ONE warmed dir, stores
  // open simultaneously (read-only opens never take the writer LOCK).
  {
    core::SolveStore ro0(dir0, /*read_only=*/true);
    core::SolveStore ro1(dir0, /*read_only=*/true);
    const std::string t0 = RunShardWithStore(grid, 0, 2, &ro0);
    const std::string t1 = RunShardWithStore(grid, 1, 2, &ro1);
    EXPECT_EQ(MergeShardCsvs({ParseText(t0), ParseText(t1)}), reference);
    // Read-only stores never write back.
    EXPECT_EQ(ro1.WriteBack(), 0u);
  }

  // Two concurrent *writers* on one cache dir hard-error before any cell
  // runs — the misconfiguration tools/shard_grid documents.
  {
    core::SolveStore writer(dir0);
    EXPECT_THROW(core::SolveStore second(dir0), util::Error);
  }
}

}  // namespace
}  // namespace dvs::runner
