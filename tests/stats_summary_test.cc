#include "stats/summary.h"

#include <gtest/gtest.h>

#include "stats/rng.h"
#include "util/error.h"

namespace dvs::stats {
namespace {

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.Add(x);
  }
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats acc;
  acc.Add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(OnlineStats, EmptyThrows) {
  const OnlineStats acc;
  EXPECT_THROW(acc.mean(), util::InvalidArgumentError);
  EXPECT_THROW(acc.min(), util::InvalidArgumentError);
  EXPECT_THROW(acc.max(), util::InvalidArgumentError);
}

TEST(OnlineStats, MergeMatchesBatch) {
  Rng rng(5);
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    all.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.Add(1.0);
  OnlineStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Summarize, Percentiles) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) {
    samples.push_back(static_cast<double>(i));
  }
  const Summary s = Summarize(samples);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-12);
  EXPECT_NEAR(s.p05, 5.95, 1e-12);
  EXPECT_NEAR(s.p95, 95.05, 1e-12);
}

TEST(Summarize, RejectsEmpty) {
  EXPECT_THROW(Summarize({}), util::InvalidArgumentError);
}

TEST(PercentileSorted, EdgeCases) {
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(one, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(one, 1.0), 5.0);
  const std::vector<double> two{1.0, 3.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(two, 0.5), 2.0);
  EXPECT_THROW(PercentileSorted(two, 1.5), util::InvalidArgumentError);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(-1.0);   // underflow
  hist.Add(0.0);    // bin 0
  hist.Add(1.9);    // bin 0
  hist.Add(5.0);    // bin 2
  hist.Add(9.99);   // bin 4
  hist.Add(10.0);   // overflow (hi-exclusive)
  EXPECT_EQ(hist.total(), 6u);
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_EQ(hist.count(0), 2u);
  EXPECT_EQ(hist.count(2), 1u);
  EXPECT_EQ(hist.count(4), 1u);
  EXPECT_DOUBLE_EQ(hist.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(2), 6.0);
}

TEST(Histogram, RejectsBadConfig) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), util::InvalidArgumentError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), util::InvalidArgumentError);
}

}  // namespace
}  // namespace dvs::stats
