#include "mp/fleet.h"

#include <gtest/gtest.h>

#include "core/method_registry.h"
#include "dpm/dpm.h"
#include "util/error.h"
#include "util/simd.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::mp {
namespace {

model::TaskSet FleetSet(const model::DvsModel& dvs, double utilization,
                        int num_tasks, std::uint64_t seed) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = num_tasks;
  gen.bcec_wcec_ratio = 0.3;
  gen.utilization = utilization;
  gen.max_sub_instances = 120;
  stats::Rng rng(seed);
  return workload::GenerateRandomTaskSet(gen, dvs, rng);
}

std::vector<const core::ScheduleMethod*> AcsWcs() {
  const core::MethodRegistry& registry = core::MethodRegistry::Builtin();
  return {&registry.Get("acs"), &registry.Get("wcs")};
}

core::ExperimentOptions SmallRun() {
  core::ExperimentOptions options;
  options.hyper_periods = 10;
  options.seed = 42;
  return options;
}

// The acceptance property: on every grid cell the partitioned-ACS fleet
// consumes no more energy than partitioned-WCS.  Deterministic streams make
// this an exact regression check, not a flaky statistical one.
TEST(EvaluateFleetFn, PartitionedAcsBeatsPartitionedWcs) {
  // The seeds were picked under scalar arithmetic; one of them sits close
  // enough to the ACS==WCS tie that the vector levels' different reduction
  // association flips its sign.  Pin the level the seeds were calibrated
  // at — the cross-level agreement contract lives in util_simd_test.
  const util::simd::ScopedLevel scalar(util::simd::Level::kScalar);
  const model::LinearDvsModel cpu = workload::DefaultModel();
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    const model::TaskSet set = FleetSet(cpu, 1.2, 8, seed);
    for (const std::string& name : PartitionerRegistry::Builtin().Names()) {
      const FleetResult result = EvaluateFleet(
          set, cpu, PartitionerRegistry::Builtin().Get(name), 2, AcsWcs(),
          SmallRun());
      ASSERT_EQ(result.outcomes.size(), 2u);
      const core::MethodOutcome& acs = result.outcomes[0].fleet;
      const core::MethodOutcome& wcs = result.outcomes[1].fleet;
      EXPECT_LE(acs.measured_energy, wcs.measured_energy)
          << name << " seed " << seed;
      EXPECT_GT(result.ImprovementOver(0, 1), 0.0) << name;
      EXPECT_EQ(acs.deadline_misses, 0) << name;
      EXPECT_EQ(wcs.deadline_misses, 0) << name;
      EXPECT_GT(result.sub_instances, 0u);
    }
  }
}

TEST(EvaluateFleetFn, DeterministicAcrossCalls) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = FleetSet(cpu, 1.2, 8, 9);
  const Partitioner& wfd = PartitionerRegistry::Builtin().Get("wfd");
  const FleetResult a = EvaluateFleet(set, cpu, wfd, 2, AcsWcs(), SmallRun());
  const FleetResult b = EvaluateFleet(set, cpu, wfd, 2, AcsWcs(), SmallRun());
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t m = 0; m < a.outcomes.size(); ++m) {
    EXPECT_EQ(a.outcomes[m].fleet.measured_energy,
              b.outcomes[m].fleet.measured_energy);
    EXPECT_EQ(a.outcomes[m].fleet.predicted_energy,
              b.outcomes[m].fleet.predicted_energy);
    ASSERT_EQ(a.outcomes[m].per_core.size(), b.outcomes[m].per_core.size());
  }
  EXPECT_EQ(a.partition.Describe(set), b.partition.Describe(set));
}

TEST(EvaluateFleetFn, IdleFloorChargesPoweredCoresOnly) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = FleetSet(cpu, 0.7, 4, 3);
  const Partitioner& ffd = PartitionerRegistry::Builtin().Get("ffd");
  // Single-core demand packed by FFD onto one of four cores: only that core
  // pays the floor.
  const FleetResult cold =
      EvaluateFleet(set, cpu, ffd, 4, AcsWcs(), SmallRun());
  const model::IdlePower idle{0.25};
  const FleetResult warm =
      EvaluateFleet(set, cpu, ffd, 4, AcsWcs(), SmallRun(), idle);
  ASSERT_EQ(cold.partition.used_cores(), warm.partition.used_cores());
  const double expected_floor =
      idle.power_per_ms * static_cast<double>(warm.partition.used_cores());
  for (std::size_t m = 0; m < warm.outcomes.size(); ++m) {
    EXPECT_NEAR(warm.outcomes[m].fleet.measured_energy -
                    cold.outcomes[m].fleet.measured_energy,
                expected_floor, 1e-9);
  }
}

TEST(EvaluateFleetFn, PerCoreOutcomesMatchPoweredCores) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = FleetSet(cpu, 1.2, 8, 13);
  const FleetResult result =
      EvaluateFleet(set, cpu, PartitionerRegistry::Builtin().Get("wfd"), 4,
                    AcsWcs(), SmallRun());
  const int powered = result.partition.used_cores();
  ASSERT_GE(powered, 2);
  for (const FleetOutcome& outcome : result.outcomes) {
    EXPECT_EQ(outcome.per_core.size(), static_cast<std::size_t>(powered));
  }
}

// Pin for the idle-floor accounting fix: the always-on floor is a property
// of the *measured* mission, so it lands in measured_energy (and the
// idle_energy breakdown), never in the NLP's predicted energy.
TEST(EvaluateFleetFn, IdleFloorStaysOutOfPredictedEnergy) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = FleetSet(cpu, 0.7, 4, 3);
  const Partitioner& ffd = PartitionerRegistry::Builtin().Get("ffd");
  const FleetResult cold =
      EvaluateFleet(set, cpu, ffd, 4, AcsWcs(), SmallRun());
  const model::IdlePower idle{0.25};
  const FleetResult warm =
      EvaluateFleet(set, cpu, ffd, 4, AcsWcs(), SmallRun(), idle);
  const double expected_floor =
      idle.power_per_ms * static_cast<double>(warm.partition.used_cores());
  for (std::size_t m = 0; m < warm.outcomes.size(); ++m) {
    // Predicted is bit-identical with and without the floor...
    EXPECT_EQ(warm.outcomes[m].fleet.predicted_energy,
              cold.outcomes[m].fleet.predicted_energy);
    // ...and the floor shows up as the dedicated idle_energy line item.
    EXPECT_NEAR(warm.outcomes[m].fleet.idle_energy, expected_floor, 1e-12);
    EXPECT_NEAR(warm.outcomes[m].fleet.measured_energy -
                    cold.outcomes[m].fleet.measured_energy,
                expected_floor, 1e-9);
  }
}

// The master switch really is inert: a fully-populated but disabled
// dpm::Options produces bit-identical fleet numbers to the legacy call.
TEST(EvaluateFleetFn, DisabledDpmIsBitIdentical) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = FleetSet(cpu, 1.2, 8, 9);
  const Partitioner& wfd = PartitionerRegistry::Builtin().Get("wfd");
  const model::IdlePower idle{0.4};

  core::ExperimentOptions loaded = SmallRun();
  loaded.dpm.enabled = false;
  loaded.dpm.sleep = dpm::ResolveSleepState("deep", idle);
  loaded.dpm.reallocate = true;
  loaded.dpm.realloc_after = 2;

  const FleetResult plain =
      EvaluateFleet(set, cpu, wfd, 2, AcsWcs(), SmallRun(), idle);
  const FleetResult armed =
      EvaluateFleet(set, cpu, wfd, 2, AcsWcs(), loaded, idle);
  ASSERT_EQ(plain.outcomes.size(), armed.outcomes.size());
  for (std::size_t m = 0; m < plain.outcomes.size(); ++m) {
    EXPECT_EQ(plain.outcomes[m].fleet.measured_energy,
              armed.outcomes[m].fleet.measured_energy);
    EXPECT_EQ(plain.outcomes[m].fleet.predicted_energy,
              armed.outcomes[m].fleet.predicted_energy);
    EXPECT_EQ(armed.outcomes[m].fleet.sleeps, 0);
    EXPECT_EQ(armed.outcomes[m].fleet.migrations, 0);
  }
}

// The DPM acceptance property at fleet level: on a lightly-loaded fleet
// with a non-trivial idle floor, sleeping through the gaps (and emptying
// cores across hyper-periods) strictly lowers measured fleet power without
// introducing a single deadline miss.
TEST(EvaluateFleetFn, DpmCutsFleetPowerWithZeroMisses) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  // Light enough (10% per core after WFD spreads it) that the reallocation
  // energy gate approves emptying a core under a 0.5/ms floor.
  const model::TaskSet set = FleetSet(cpu, 0.2, 6, 17);
  const Partitioner& wfd = PartitionerRegistry::Builtin().Get("wfd");
  const model::IdlePower idle{0.5};

  core::ExperimentOptions base = SmallRun();
  base.hyper_periods = 10;
  const FleetResult off = EvaluateFleet(set, cpu, wfd, 2, AcsWcs(), base, idle);

  core::ExperimentOptions managed = base;
  managed.dpm.enabled = true;
  managed.dpm.sleep = dpm::ResolveSleepState("deep", idle);
  managed.dpm.reallocate = true;
  managed.dpm.realloc_after = 1;
  const FleetResult on =
      EvaluateFleet(set, cpu, wfd, 2, AcsWcs(), managed, idle);

  ASSERT_EQ(off.outcomes.size(), on.outcomes.size());
  for (std::size_t m = 0; m < on.outcomes.size(); ++m) {
    const core::MethodOutcome& before = off.outcomes[m].fleet;
    const core::MethodOutcome& after = on.outcomes[m].fleet;
    EXPECT_LT(after.measured_energy, before.measured_energy) << "method " << m;
    EXPECT_EQ(after.deadline_misses, 0) << "method " << m;
    EXPECT_GT(after.sleeps, 0) << "method " << m;
    EXPECT_GT(after.sleep_time, 0.0) << "method " << m;
    // WFD spreads a one-core-sized load over both cores, so the
    // reallocation pass has a core to empty: the powered-core count becomes
    // time-weighted and drops below the partitioner's.
    EXPECT_GT(after.migrations, 0) << "method " << m;
    EXPECT_LT(after.weighted_cores,
              static_cast<double>(on.partition.used_cores()))
        << "method " << m;
    // The ledger decomposes: floor-while-awake plus sleep residency never
    // exceeds what the bare floor would have cost.
    EXPECT_GT(after.idle_energy, 0.0);
    EXPECT_LE(after.idle_energy + after.sleep_energy,
              idle.power_per_ms * static_cast<double>(
                                      on.partition.used_cores()) +
                  1e-9);
  }
}

TEST(EvaluateFleetFn, RequiresMethods) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = FleetSet(cpu, 0.7, 4, 3);
  EXPECT_THROW(
      EvaluateFleet(set, cpu, PartitionerRegistry::Builtin().Get("ffd"), 2,
                    {}, SmallRun()),
      util::InvalidArgumentError);
}

}  // namespace
}  // namespace dvs::mp
