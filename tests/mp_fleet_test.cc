#include "mp/fleet.h"

#include <gtest/gtest.h>

#include "core/method_registry.h"
#include "util/error.h"
#include "util/simd.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::mp {
namespace {

model::TaskSet FleetSet(const model::DvsModel& dvs, double utilization,
                        int num_tasks, std::uint64_t seed) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = num_tasks;
  gen.bcec_wcec_ratio = 0.3;
  gen.utilization = utilization;
  gen.max_sub_instances = 120;
  stats::Rng rng(seed);
  return workload::GenerateRandomTaskSet(gen, dvs, rng);
}

std::vector<const core::ScheduleMethod*> AcsWcs() {
  const core::MethodRegistry& registry = core::MethodRegistry::Builtin();
  return {&registry.Get("acs"), &registry.Get("wcs")};
}

core::ExperimentOptions SmallRun() {
  core::ExperimentOptions options;
  options.hyper_periods = 10;
  options.seed = 42;
  return options;
}

// The acceptance property: on every grid cell the partitioned-ACS fleet
// consumes no more energy than partitioned-WCS.  Deterministic streams make
// this an exact regression check, not a flaky statistical one.
TEST(EvaluateFleetFn, PartitionedAcsBeatsPartitionedWcs) {
  // The seeds were picked under scalar arithmetic; one of them sits close
  // enough to the ACS==WCS tie that the vector levels' different reduction
  // association flips its sign.  Pin the level the seeds were calibrated
  // at — the cross-level agreement contract lives in util_simd_test.
  const util::simd::ScopedLevel scalar(util::simd::Level::kScalar);
  const model::LinearDvsModel cpu = workload::DefaultModel();
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    const model::TaskSet set = FleetSet(cpu, 1.2, 8, seed);
    for (const std::string& name : PartitionerRegistry::Builtin().Names()) {
      const FleetResult result = EvaluateFleet(
          set, cpu, PartitionerRegistry::Builtin().Get(name), 2, AcsWcs(),
          SmallRun());
      ASSERT_EQ(result.outcomes.size(), 2u);
      const core::MethodOutcome& acs = result.outcomes[0].fleet;
      const core::MethodOutcome& wcs = result.outcomes[1].fleet;
      EXPECT_LE(acs.measured_energy, wcs.measured_energy)
          << name << " seed " << seed;
      EXPECT_GT(result.ImprovementOver(0, 1), 0.0) << name;
      EXPECT_EQ(acs.deadline_misses, 0) << name;
      EXPECT_EQ(wcs.deadline_misses, 0) << name;
      EXPECT_GT(result.sub_instances, 0u);
    }
  }
}

TEST(EvaluateFleetFn, DeterministicAcrossCalls) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = FleetSet(cpu, 1.2, 8, 9);
  const Partitioner& wfd = PartitionerRegistry::Builtin().Get("wfd");
  const FleetResult a = EvaluateFleet(set, cpu, wfd, 2, AcsWcs(), SmallRun());
  const FleetResult b = EvaluateFleet(set, cpu, wfd, 2, AcsWcs(), SmallRun());
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t m = 0; m < a.outcomes.size(); ++m) {
    EXPECT_EQ(a.outcomes[m].fleet.measured_energy,
              b.outcomes[m].fleet.measured_energy);
    EXPECT_EQ(a.outcomes[m].fleet.predicted_energy,
              b.outcomes[m].fleet.predicted_energy);
    ASSERT_EQ(a.outcomes[m].per_core.size(), b.outcomes[m].per_core.size());
  }
  EXPECT_EQ(a.partition.Describe(set), b.partition.Describe(set));
}

TEST(EvaluateFleetFn, IdleFloorChargesPoweredCoresOnly) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = FleetSet(cpu, 0.7, 4, 3);
  const Partitioner& ffd = PartitionerRegistry::Builtin().Get("ffd");
  // Single-core demand packed by FFD onto one of four cores: only that core
  // pays the floor.
  const FleetResult cold =
      EvaluateFleet(set, cpu, ffd, 4, AcsWcs(), SmallRun());
  const model::IdlePower idle{0.25};
  const FleetResult warm =
      EvaluateFleet(set, cpu, ffd, 4, AcsWcs(), SmallRun(), idle);
  ASSERT_EQ(cold.partition.used_cores(), warm.partition.used_cores());
  const double expected_floor =
      idle.power_per_ms * static_cast<double>(warm.partition.used_cores());
  for (std::size_t m = 0; m < warm.outcomes.size(); ++m) {
    EXPECT_NEAR(warm.outcomes[m].fleet.measured_energy -
                    cold.outcomes[m].fleet.measured_energy,
                expected_floor, 1e-9);
  }
}

TEST(EvaluateFleetFn, PerCoreOutcomesMatchPoweredCores) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = FleetSet(cpu, 1.2, 8, 13);
  const FleetResult result =
      EvaluateFleet(set, cpu, PartitionerRegistry::Builtin().Get("wfd"), 4,
                    AcsWcs(), SmallRun());
  const int powered = result.partition.used_cores();
  ASSERT_GE(powered, 2);
  for (const FleetOutcome& outcome : result.outcomes) {
    EXPECT_EQ(outcome.per_core.size(), static_cast<std::size_t>(powered));
  }
}

TEST(EvaluateFleetFn, RequiresMethods) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = FleetSet(cpu, 0.7, 4, 3);
  EXPECT_THROW(
      EvaluateFleet(set, cpu, PartitionerRegistry::Builtin().Get("ffd"), 2,
                    {}, SmallRun()),
      util::InvalidArgumentError);
}

}  // namespace
}  // namespace dvs::mp
