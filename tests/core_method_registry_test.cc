#include "core/method_registry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.h"
#include "fps/expansion.h"
#include "util/error.h"
#include "workload/motivation.h"
#include "workload/presets.h"

namespace dvs::core {
namespace {

ExperimentOptions FastOptions() {
  ExperimentOptions options;
  options.hyper_periods = 25;
  options.seed = 42;
  return options;
}

TEST(MethodRegistry, BuiltinsAreSelectableByName) {
  const MethodRegistry& registry = MethodRegistry::Builtin();
  const std::vector<std::string> names = registry.Names();
  EXPECT_GE(names.size(), 4u);
  for (const char* name :
       {"acs", "wcs", "wcs-static", "greedy-reclaim", "static-vmax"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    EXPECT_TRUE(std::find(names.begin(), names.end(), name) != names.end());
    EXPECT_FALSE(registry.Description(name).empty());
    registry.Get(name);  // must not throw
  }
}

TEST(MethodRegistry, UnknownNameFailsWithClearError) {
  const MethodRegistry& registry = MethodRegistry::Builtin();
  EXPECT_FALSE(registry.Contains("no-such-method"));
  try {
    registry.Get("no-such-method");
    FAIL() << "expected InvalidArgumentError";
  } catch (const util::InvalidArgumentError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("no-such-method"), std::string::npos) << what;
    // The message lists the registered methods so the caller can recover.
    EXPECT_NE(what.find("acs"), std::string::npos) << what;
    EXPECT_NE(what.find("wcs"), std::string::npos) << what;
  }
}

TEST(MethodRegistry, RejectsDuplicateAndEmptyNames) {
  MethodRegistry registry;
  class Dummy final : public ScheduleMethod {
   public:
    MethodPlan Plan(MethodContext& context) const override {
      MethodPlan plan{context.VmaxAsap(),
                      std::make_unique<sim::VmaxPolicy>(context.dvs()), 0.0,
                      false};
      return plan;
    }
  };
  registry.Register("dummy", "test", std::make_unique<Dummy>());
  EXPECT_THROW(registry.Register("dummy", "again", std::make_unique<Dummy>()),
               util::InvalidArgumentError);
  EXPECT_THROW(registry.Register("", "unnamed", std::make_unique<Dummy>()),
               util::InvalidArgumentError);
}

TEST(MethodRegistry, ShimMatchesDirectEvaluation) {
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const model::TaskSet set = workload::MotivationTaskSet();
  const ExperimentOptions options = FastOptions();

  const ComparisonResult shim = CompareAcsWcs(set, cpu, options);

  const fps::FullyPreemptiveSchedule fps(set);
  MethodContext context(fps, cpu, options.scheduler);
  const MethodRegistry& registry = MethodRegistry::Builtin();
  const MethodOutcome acs =
      EvaluateMethod(registry.Get("acs"), context, options);
  const MethodOutcome wcs =
      EvaluateMethod(registry.Get("wcs"), context, options);

  EXPECT_EQ(shim.acs.measured_energy, acs.measured_energy);
  EXPECT_EQ(shim.acs.predicted_energy, acs.predicted_energy);
  EXPECT_EQ(shim.wcs.measured_energy, wcs.measured_energy);
  EXPECT_EQ(shim.wcs.predicted_energy, wcs.predicted_energy);
  EXPECT_EQ(shim.acs.deadline_misses, 0);
  EXPECT_EQ(shim.wcs.deadline_misses, 0);
}

TEST(MethodRegistry, StaticVmaxIsTheEnergyCeiling) {
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const model::TaskSet set = workload::MotivationTaskSet();
  const ExperimentOptions options = FastOptions();

  const fps::FullyPreemptiveSchedule fps(set);
  MethodContext context(fps, cpu, options.scheduler);
  const MethodRegistry& registry = MethodRegistry::Builtin();

  const MethodOutcome ceiling =
      EvaluateMethod(registry.Get("static-vmax"), context, options);
  EXPECT_GT(ceiling.measured_energy, 0.0);

  // Identical workload realisations (same seed) at voltages <= vmax: no
  // method can burn more energy than running everything at vmax.
  for (const char* name : {"acs", "wcs", "wcs-static", "greedy-reclaim"}) {
    const MethodOutcome outcome =
        EvaluateMethod(registry.Get(name), context, options);
    EXPECT_LE(outcome.measured_energy, ceiling.measured_energy + 1e-9) << name;
    EXPECT_EQ(outcome.deadline_misses, 0) << name;
  }
}

}  // namespace
}  // namespace dvs::core
