#include "runner/csv_sink.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/experiment_grid.h"
#include "runner/run_grid.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::runner {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

ExperimentGrid TinyGrid(const model::DvsModel& dvs,
                        workload::RandomTaskSetOptions gen) {
  ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {RandomSource("random-2", gen, 2)};
  grid.methods = {"wcs", "static-vmax"};
  grid.baseline = "wcs";
  grid.hyper_periods = 5;
  grid.master_seed = 3;
  return grid;
}

TEST(CsvSink, StreamsOneRowPerCellMethod) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  gen.bcec_wcec_ratio = 0.5;
  gen.max_sub_instances = 24;
  const ExperimentGrid grid = TinyGrid(cpu, gen);

  const std::string path = testing::TempDir() + "/cells.csv";
  {
    CsvSink sink(path);
    RunOptions options;
    options.threads = 2;
    options.sink = &sink;
    const GridResult result = RunGrid(grid, options);
    ASSERT_EQ(result.failed_cells, 0u);
    EXPECT_EQ(sink.rows(), grid.CellCount() * grid.methods.size());
  }

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u + grid.CellCount() * grid.methods.size());
  EXPECT_EQ(lines[0], util::Join(CsvSink::Header(), ","));
  const std::size_t columns = CsvSink::Header().size();
  for (std::size_t i = 1; i < lines.size(); ++i) {
    // No quoting needed for these labels, so columns == comma count + 1.
    EXPECT_EQ(util::Split(lines[i], ',').size(), columns) << lines[i];
  }
}

TEST(CsvSink, FailedCellsEmitOneErrorRow) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  gen.bcec_wcec_ratio = 0.5;
  gen.max_sub_instances = 0;  // every draw rejected: cells fail
  gen.max_attempts = 3;
  const ExperimentGrid grid = TinyGrid(cpu, gen);

  const std::string path = testing::TempDir() + "/failed.csv";
  CsvSink sink(path);
  RunOptions options;
  options.sink = &sink;
  const GridResult result = RunGrid(grid, options);
  EXPECT_EQ(result.failed_cells, grid.CellCount());
  EXPECT_EQ(sink.rows(), grid.CellCount());

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u + grid.CellCount());
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("attempt budget"), std::string::npos) << lines[i];
  }
}

TEST(CsvSink, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvSink("/nonexistent-dir/cells.csv"), util::Error);
}

TEST(CsvSink, ScenarioColumnCarriesTheAxisValue) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  gen.bcec_wcec_ratio = 0.5;
  gen.max_sub_instances = 24;
  ExperimentGrid grid = TinyGrid(cpu, gen);
  grid.sources = {RandomSource("random-2", gen, 1)};
  grid.scenarios = {"iid-normal", "heavy-tail"};

  const std::string path = testing::TempDir() + "/scenario_cells.csv";
  {
    CsvSink sink(path, /*scenario_column=*/true);
    RunOptions options;
    options.threads = 1;
    options.sink = &sink;
    const GridResult result = RunGrid(grid, options);
    ASSERT_EQ(result.failed_cells, 0u);
  }

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u + grid.CellCount() * grid.methods.size());
  EXPECT_EQ(lines[0], util::Join(CsvSink::HeaderWithScenario(), ","));
  const std::size_t columns = CsvSink::HeaderWithScenario().size();
  EXPECT_EQ(columns, CsvSink::Header().size() + 1);
  std::size_t scenario_col = 0;
  for (std::size_t c = 0; c < columns; ++c) {
    if (CsvSink::HeaderWithScenario()[c] == "scenario") {
      scenario_col = c;
    }
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string> fields = util::Split(lines[i], ',');
    ASSERT_EQ(fields.size(), columns) << lines[i];
    EXPECT_TRUE(fields[scenario_col] == "iid-normal" ||
                fields[scenario_col] == "heavy-tail")
        << lines[i];
  }
}

}  // namespace
}  // namespace dvs::runner
