#include "runner/csv_sink.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dpm/dpm.h"
#include "runner/experiment_grid.h"
#include "runner/run_grid.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::runner {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

ExperimentGrid TinyGrid(const model::DvsModel& dvs,
                        workload::RandomTaskSetOptions gen) {
  ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {RandomSource("random-2", gen, 2)};
  grid.methods = {"wcs", "static-vmax"};
  grid.baseline = "wcs";
  grid.hyper_periods = 5;
  grid.master_seed = 3;
  return grid;
}

TEST(CsvSink, StreamsOneRowPerCellMethod) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  gen.bcec_wcec_ratio = 0.5;
  gen.max_sub_instances = 24;
  const ExperimentGrid grid = TinyGrid(cpu, gen);

  const std::string path = testing::TempDir() + "/cells.csv";
  {
    CsvSink sink(path);
    RunOptions options;
    options.threads = 2;
    options.sink = &sink;
    const GridResult result = RunGrid(grid, options);
    ASSERT_EQ(result.failed_cells, 0u);
    EXPECT_EQ(sink.rows(), grid.CellCount() * grid.methods.size());
  }

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u + grid.CellCount() * grid.methods.size());
  EXPECT_EQ(lines[0], util::Join(CsvSink::Header(), ","));
  const std::size_t columns = CsvSink::Header().size();
  for (std::size_t i = 1; i < lines.size(); ++i) {
    // No quoting needed for these labels, so columns == comma count + 1.
    EXPECT_EQ(util::Split(lines[i], ',').size(), columns) << lines[i];
  }
}

TEST(CsvSink, FailedCellsEmitOneErrorRow) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  gen.bcec_wcec_ratio = 0.5;
  gen.max_sub_instances = 0;  // every draw rejected: cells fail
  gen.max_attempts = 3;
  const ExperimentGrid grid = TinyGrid(cpu, gen);

  const std::string path = testing::TempDir() + "/failed.csv";
  CsvSink sink(path);
  RunOptions options;
  options.sink = &sink;
  const GridResult result = RunGrid(grid, options);
  EXPECT_EQ(result.failed_cells, grid.CellCount());
  EXPECT_EQ(sink.rows(), grid.CellCount());

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u + grid.CellCount());
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("attempt budget"), std::string::npos) << lines[i];
  }
}

TEST(CsvSink, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvSink("/nonexistent-dir/cells.csv"), util::Error);
}

TEST(CsvSink, ScenarioColumnCarriesTheAxisValue) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  gen.bcec_wcec_ratio = 0.5;
  gen.max_sub_instances = 24;
  ExperimentGrid grid = TinyGrid(cpu, gen);
  grid.sources = {RandomSource("random-2", gen, 1)};
  grid.scenarios = {"iid-normal", "heavy-tail"};

  const std::string path = testing::TempDir() + "/scenario_cells.csv";
  {
    CsvSink sink(path, /*scenario_column=*/true);
    RunOptions options;
    options.threads = 1;
    options.sink = &sink;
    const GridResult result = RunGrid(grid, options);
    ASSERT_EQ(result.failed_cells, 0u);
  }

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u + grid.CellCount() * grid.methods.size());
  EXPECT_EQ(lines[0], util::Join(CsvSink::HeaderWithScenario(), ","));
  const std::size_t columns = CsvSink::HeaderWithScenario().size();
  EXPECT_EQ(columns, CsvSink::Header().size() + 1);
  std::size_t scenario_col = 0;
  for (std::size_t c = 0; c < columns; ++c) {
    if (CsvSink::HeaderWithScenario()[c] == "scenario") {
      scenario_col = c;
    }
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string> fields = util::Split(lines[i], ',');
    ASSERT_EQ(fields.size(), columns) << lines[i];
    EXPECT_TRUE(fields[scenario_col] == "iid-normal" ||
                fields[scenario_col] == "heavy-tail")
        << lines[i];
  }
}

// A degenerate improvement ratio (zero-energy baseline -> -inf) must leave
// the improvement_pct field empty instead of printing "inf"/"nan" into the
// CSV.  Exercised through a hand-built cell: no real pipeline run can
// produce zero measured energy, which is exactly why the formatting path
// needs its own pin.
TEST(CsvSink, NonFiniteImprovementLeavesFieldEmpty) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  const ExperimentGrid grid = TinyGrid(cpu, gen);

  const std::string path = testing::TempDir() + "/degenerate.csv";
  {
    CsvSink sink(path);
    CellResult cell;
    cell.hyper_period = 10;
    cell.sub_instances = 1;
    cell.outcomes.resize(2);
    cell.outcomes[0].measured_energy = 0.0;  // baseline "wcs": zero energy
    cell.outcomes[1].measured_energy = 1.0;
    sink.OnCell(grid, cell);
    EXPECT_EQ(sink.rows(), 2u);
  }

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 3u);
  std::size_t improvement_col = 0;
  for (std::size_t c = 0; c < CsvSink::Header().size(); ++c) {
    if (CsvSink::Header()[c] == "improvement_pct") {
      improvement_col = c;
    }
  }
  // Row for the non-baseline method: the ratio is -inf, the field empty.
  const std::vector<std::string> fields = util::Split(lines[2], ',');
  ASSERT_EQ(fields.size(), CsvSink::Header().size());
  EXPECT_EQ(fields[improvement_col], "");
}

// The opt-in DPM ledger columns: schema position (before error), real
// values on ok rows, and comma padding on failed rows.
TEST(CsvSink, DpmColumnsCarryTheLedger) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 3;
  gen.bcec_wcec_ratio = 0.5;
  gen.utilization = 0.3;
  gen.max_sub_instances = 40;
  ExperimentGrid grid = TinyGrid(cpu, gen);
  grid.sources = {RandomSource("random-2", gen, 1)};
  grid.core_counts = {2};
  grid.idle_power.power_per_ms = 0.5;
  grid.dpm.enabled = true;
  grid.dpm.sleep = dpm::ResolveSleepState("deep", grid.idle_power);

  const std::string path = testing::TempDir() + "/dpm_cells.csv";
  {
    CsvSink sink(path, /*scenario_column=*/false,
                 /*solver_stats_columns=*/false, /*dpm_columns=*/true);
    RunOptions options;
    options.threads = 1;
    options.sink = &sink;
    const GridResult result = RunGrid(grid, options);
    ASSERT_EQ(result.failed_cells, 0u);
  }

  const std::vector<std::string> lines = ReadLines(path);
  const std::vector<std::string> header = util::Split(lines[0], ',');
  ASSERT_EQ(header.size(), CsvSink::Header().size() + 5);
  EXPECT_EQ(header[header.size() - 1], "error");
  std::size_t idle_col = 0;
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (header[c] == "idle_energy") {
      idle_col = c;
    }
  }
  ASSERT_GT(idle_col, 0u);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string> fields = util::Split(lines[i], ',');
    ASSERT_EQ(fields.size(), header.size()) << lines[i];
    // The fleet paid a floor while awake on every successful cell.
    EXPECT_GT(std::stod(fields[idle_col]), 0.0) << lines[i];
  }

  // Failed cells pad the DPM group so the row still parses.
  workload::RandomTaskSetOptions bad = gen;
  bad.max_sub_instances = 0;
  bad.max_attempts = 3;
  ExperimentGrid failing = TinyGrid(cpu, bad);
  const std::string failed_path = testing::TempDir() + "/dpm_failed.csv";
  {
    CsvSink sink(failed_path, false, false, /*dpm_columns=*/true);
    RunOptions options;
    options.sink = &sink;
    RunGrid(failing, options);
  }
  const std::vector<std::string> failed_lines = ReadLines(failed_path);
  for (std::size_t i = 1; i < failed_lines.size(); ++i) {
    EXPECT_EQ(util::Split(failed_lines[i], ',').size(), header.size())
        << failed_lines[i];
  }
}

}  // namespace
}  // namespace dvs::runner
