#include "stats/rng.h"

#include <gtest/gtest.h>

#include <set>

#include "stats/summary.h"
#include "util/error.h"

namespace dvs::stats {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 3.5);
  }
  EXPECT_THROW(rng.Uniform(1.0, 1.0), util::InvalidArgumentError);
}

TEST(Rng, UniformMeanConverges) {
  Rng rng(11);
  OnlineStats acc;
  for (int i = 0; i < 100000; ++i) {
    acc.Add(rng.Uniform(0.0, 10.0));
  }
  EXPECT_NEAR(acc.mean(), 5.0, 0.05);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit in 1000 draws
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
  EXPECT_THROW(rng.UniformInt(5, 4), util::InvalidArgumentError);
}

TEST(Rng, NormalMomentsConverge) {
  Rng rng(13);
  OnlineStats acc;
  for (int i = 0; i < 200000; ++i) {
    acc.Add(rng.Normal(3.0, 2.0));
  }
  EXPECT_NEAR(acc.mean(), 3.0, 0.03);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.03);
}

TEST(Rng, NormalRejectsNegativeSigma) {
  Rng rng(1);
  EXPECT_THROW(rng.Normal(0.0, -1.0), util::InvalidArgumentError);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent_again(99);
  parent_again.NextU64();  // align with the Fork() consumption
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += child.NextU64() == parent_again.NextU64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkWithLabelIsDeterministic) {
  Rng a(42);
  Rng b(42);
  Rng child_a = a.ForkWith(17);
  Rng child_b = b.ForkWith(17);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(child_a.NextU64(), child_b.NextU64());
  }
}

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 a(0);
  SplitMix64 b(1);
  EXPECT_NE(a.Next(), b.Next());
}

}  // namespace
}  // namespace dvs::stats
