#include "util/math.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace dvs::util {
namespace {

TEST(Gcd, BasicPairs) {
  EXPECT_EQ(Gcd(12, 18), 6);
  EXPECT_EQ(Gcd(18, 12), 6);
  EXPECT_EQ(Gcd(7, 13), 1);
  EXPECT_EQ(Gcd(100, 100), 100);
  EXPECT_EQ(Gcd(1, 999), 1);
}

TEST(Gcd, RejectsNonPositive) {
  EXPECT_THROW(Gcd(0, 5), InvalidArgumentError);
  EXPECT_THROW(Gcd(5, 0), InvalidArgumentError);
  EXPECT_THROW(Gcd(-4, 8), InvalidArgumentError);
}

TEST(Lcm, BasicPairs) {
  EXPECT_EQ(Lcm(4, 6), 12);
  EXPECT_EQ(Lcm(10, 25), 50);
  EXPECT_EQ(Lcm(7, 7), 7);
  EXPECT_EQ(Lcm(1, 9), 9);
}

TEST(Lcm, DetectsOverflow) {
  const std::int64_t big = 3'000'000'000'000'000'000LL;
  EXPECT_THROW(Lcm(big, big - 1), InvalidArgumentError);
}

TEST(LcmAll, HyperPeriodOfTypicalTaskPeriods) {
  EXPECT_EQ(LcmAll({10, 20, 25, 40}), 200);
  EXPECT_EQ(LcmAll({600, 1200, 2400, 4800}), 4800);
  EXPECT_EQ(LcmAll({25, 50, 100, 200, 1000}), 1000);
  EXPECT_EQ(LcmAll({42}), 42);
}

TEST(LcmAll, RejectsEmpty) {
  EXPECT_THROW(LcmAll({}), InvalidArgumentError);
}

TEST(AlmostEqual, AbsoluteAndRelative) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0));
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 5e-10));
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
  EXPECT_TRUE(AlmostEqual(1e12, 1e12 * (1.0 + 1e-10)));
  EXPECT_FALSE(AlmostEqual(1e12, 1e12 * 1.001));
  EXPECT_TRUE(AlmostEqual(0.0, 0.0));
}

TEST(LessOrAlmostEqual, Tolerance) {
  EXPECT_TRUE(LessOrAlmostEqual(1.0, 2.0));
  EXPECT_TRUE(LessOrAlmostEqual(1.0, 1.0));
  EXPECT_TRUE(LessOrAlmostEqual(1.0 + 5e-10, 1.0));
  EXPECT_FALSE(LessOrAlmostEqual(1.1, 1.0));
}

TEST(Clamp, InsideAndOutside) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(11.0, 0.0, 10.0), 10.0);
  EXPECT_THROW(Clamp(0.0, 2.0, 1.0), InvalidArgumentError);
}

TEST(Linspace, EndpointsAndSpacing) {
  const std::vector<double> pts = Linspace(0.0, 1.0, 5);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts.front(), 0.0);
  EXPECT_DOUBLE_EQ(pts.back(), 1.0);
  EXPECT_DOUBLE_EQ(pts[2], 0.5);
  EXPECT_THROW(Linspace(0.0, 1.0, 1), InvalidArgumentError);
}

TEST(RelativeDifference, Scales) {
  EXPECT_DOUBLE_EQ(RelativeDifference(1.0, 1.0), 0.0);
  EXPECT_NEAR(RelativeDifference(100.0, 101.0), 0.0099, 1e-4);
  EXPECT_NEAR(RelativeDifference(0.0, 1e-15), 1e-15 / 1e-12, 1e-6);
}

}  // namespace
}  // namespace dvs::util
