// Integration tests that pin the reproduction to the paper's numbers and
// claimed trends (§2.2 and §4).
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/workload.h"
#include "sim/engine.h"
#include "sim/policy.h"
#include "workload/cnc.h"
#include "workload/gap.h"
#include "workload/motivation.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs {
namespace {

// --- §2.2: the motivational example, end to end ----------------------------

TEST(PaperMotivation, Figure1StaticScheduleAndGreedyRuntime) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const sim::StaticSchedule wcs(fps, workload::MotivationWcsEndTimes(),
                                {20.0e6, 20.0e6, 20.0e6});
  // Greedy runtime under ACEC: finishes at 3.33 / 8.33 / 14.05 ms — the
  // tick marks of the paper's Figure 1(b).
  const model::FixedWorkload avg(set, model::FixedScenario::kAverage);
  const sim::GreedyReclaimPolicy policy(cpu);
  stats::Rng rng(1);
  sim::SimOptions options;
  options.record_trace = true;
  const sim::SimResult result =
      sim::Simulate(fps, wcs, cpu, policy, avg, rng, options);
  ASSERT_EQ(result.trace.size(), 3u);
  EXPECT_NEAR(result.trace.slices()[0].end, 10.0 / 3.0, 0.01);
  EXPECT_NEAR(result.trace.slices()[1].end, 25.0 / 3.0, 0.01);
  // 8.333 + 1e7 cycles at 12/7 V = 14.167 (the paper's "14.1" tick).
  EXPECT_NEAR(result.trace.slices()[2].end, 85.0 / 6.0, 0.01);
  // Voltages 3 V, 2 V, ~1.71 V.
  EXPECT_NEAR(result.trace.slices()[0].voltage, 3.0, 1e-6);
  EXPECT_NEAR(result.trace.slices()[1].voltage, 2.0, 1e-6);
  EXPECT_NEAR(result.trace.slices()[2].voltage, 12.0 / 7.0, 1e-3);
}

TEST(PaperMotivation, Figure2TwentyFourPercent) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const std::vector<double> budgets(3, 20.0e6);
  const sim::StaticSchedule wcs(fps, workload::MotivationWcsEndTimes(),
                                budgets);
  const sim::StaticSchedule acs(fps, workload::MotivationAcsEndTimes(),
                                budgets);
  const model::FixedWorkload avg(set, model::FixedScenario::kAverage);
  const sim::GreedyReclaimPolicy policy(cpu);
  stats::Rng r1(1), r2(2);
  const double e_wcs =
      sim::Simulate(fps, wcs, cpu, policy, avg, r1).total_energy;
  const double e_acs =
      sim::Simulate(fps, acs, cpu, policy, avg, r2).total_energy;
  EXPECT_NEAR((e_wcs - e_acs) / e_wcs, 0.247, 0.01);  // paper: 24%
}

TEST(PaperMotivation, WorstCaseThirtyThreePercentPenaltyAnd4V) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const std::vector<double> budgets(3, 20.0e6);
  const sim::StaticSchedule wcs(fps, workload::MotivationWcsEndTimes(),
                                budgets);
  const sim::StaticSchedule acs(fps, workload::MotivationAcsEndTimes(),
                                budgets);
  const model::FixedWorkload worst(set, model::FixedScenario::kWorst);
  const sim::GreedyReclaimPolicy policy(cpu);
  stats::Rng r1(1), r2(2);
  sim::SimOptions options;
  options.record_trace = true;
  const sim::SimResult rw =
      sim::Simulate(fps, wcs, cpu, policy, worst, r1, options);
  const sim::SimResult ra =
      sim::Simulate(fps, acs, cpu, policy, worst, r2, options);
  EXPECT_EQ(rw.deadline_misses, 0);
  EXPECT_EQ(ra.deadline_misses, 0);
  EXPECT_NEAR((ra.total_energy - rw.total_energy) / rw.total_energy, 0.333,
              0.01);  // paper: 33% increase
  // "4V is needed for both T2 and T3 in order to meet the timing
  // constraints" under the alternative schedule.
  double max_v = 0.0;
  for (const sim::ExecutionSlice& s : ra.trace.slices()) {
    max_v = std::max(max_v, s.voltage);
  }
  EXPECT_NEAR(max_v, 4.0, 1e-6);
}

// --- §4 trends --------------------------------------------------------------

struct TrendPoint {
  double ratio;
  double improvement;
};

TrendPoint RunPoint(int num_tasks, double ratio, std::uint64_t seed) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  stats::Rng rng(seed);
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = num_tasks;
  gen.bcec_wcec_ratio = ratio;
  const model::TaskSet set = workload::GenerateRandomTaskSet(gen, cpu, rng);
  core::ExperimentOptions options;
  options.hyper_periods = 60;
  options.seed = seed * 13 + 1;
  const core::ComparisonResult result = core::CompareAcsWcs(set, cpu, options);
  EXPECT_EQ(result.acs.deadline_misses, 0);
  EXPECT_EQ(result.wcs.deadline_misses, 0);
  return {ratio, result.Improvement()};
}

TEST(PaperTrends, ImprovementFallsWithBcecWcecRatio) {
  // Average a few seeds per ratio to tame noise.
  double lo = 0.0;
  double hi = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    lo += RunPoint(6, 0.1, seed).improvement;
    hi += RunPoint(6, 0.9, seed).improvement;
  }
  EXPECT_GT(lo / 3.0, hi / 3.0);
  EXPECT_GT(lo / 3.0, 0.10);  // meaningful savings at high flexibility
  EXPECT_LT(hi / 3.0, 0.15);  // little room at nearly fixed workloads
}

TEST(PaperTrends, AcsNeverLosesMeaningfully) {
  // ACS with its own schedule must never consume meaningfully more energy
  // than WCS on the same workloads.
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const TrendPoint p = RunPoint(4, 0.5, seed);
    EXPECT_GT(p.improvement, -0.02) << "seed " << seed;
  }
}

TEST(PaperRealLife, CncAndGapImproveAtHighFlexibility) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  core::ExperimentOptions options;
  options.hyper_periods = 40;
  options.seed = 5;

  workload::CncOptions cnc;
  cnc.bcec_wcec_ratio = 0.1;
  const core::ComparisonResult rc =
      core::CompareAcsWcs(workload::CncTaskSet(cnc, cpu), cpu, options);
  EXPECT_EQ(rc.acs.deadline_misses, 0);
  EXPECT_GT(rc.Improvement(), 0.10);

  workload::GapOptions gap;
  gap.bcec_wcec_ratio = 0.1;
  const core::ComparisonResult rg =
      core::CompareAcsWcs(workload::GapTaskSet(gap, cpu), cpu, options);
  EXPECT_EQ(rg.acs.deadline_misses, 0);
  EXPECT_GT(rg.Improvement(), 0.05);
}

// --- Safety property: zero misses under adversarial workloads ---------------

class WorstCaseSafetyTest : public ::testing::TestWithParam<int> {};

TEST_P(WorstCaseSafetyTest, NoMissesEvenWhenEveryInstanceTakesWcec) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 3);
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2 + GetParam() % 8;
  gen.bcec_wcec_ratio = 0.1 + 0.1 * (GetParam() % 9);
  const model::TaskSet set = workload::GenerateRandomTaskSet(gen, cpu, rng);
  const fps::FullyPreemptiveSchedule fps(set);

  const core::ScheduleResult wcs = core::SolveWcs(fps, cpu);
  const core::ScheduleResult acs = core::SolveSchedule(
      fps, cpu, core::Scenario::kAverage, {}, wcs.schedule);

  const model::FixedWorkload adversary(set, model::FixedScenario::kWorst);
  const sim::GreedyReclaimPolicy policy(cpu);
  for (const sim::StaticSchedule* schedule :
       {&wcs.schedule, &acs.schedule}) {
    stats::Rng srng(1);
    sim::SimOptions options;
    options.hyper_periods = 3;
    const sim::SimResult result =
        sim::Simulate(fps, *schedule, cpu, policy, adversary, srng, options);
    EXPECT_EQ(result.deadline_misses, 0)
        << "seed " << GetParam() << ": " << result.first_miss;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorstCaseSafetyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace dvs
