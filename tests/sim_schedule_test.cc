// Tests for StaticSchedule, the worst-case feasibility audit and the
// Vmax-ASAP schedule builder.
#include <gtest/gtest.h>

#include "fps/expansion.h"
#include "sim/engine.h"
#include "sim/static_schedule.h"
#include "util/error.h"
#include "workload/motivation.h"
#include "workload/presets.h"

namespace dvs::sim {
namespace {

model::Task MakeTask(std::string name, std::int64_t period, double wcec) {
  model::Task t;
  t.name = std::move(name);
  t.period = period;
  t.wcec = wcec;
  t.acec = 0.6 * wcec;
  t.bcec = 0.2 * wcec;
  return t;
}

TEST(StaticSchedule, ValidatesSizes) {
  const model::TaskSet set({MakeTask("a", 10, 4.0)});
  const fps::FullyPreemptiveSchedule fps(set);
  EXPECT_NO_THROW(StaticSchedule(fps, {10.0}, {4.0}));
  EXPECT_THROW(StaticSchedule(fps, {10.0, 20.0}, {4.0}),
               util::InvalidArgumentError);
  EXPECT_THROW(StaticSchedule(fps, {10.0}, {}), util::InvalidArgumentError);
  EXPECT_THROW(StaticSchedule(fps, {10.0}, {-1.0}),
               util::InvalidArgumentError);
}

TEST(VerifyWorstCase, AcceptsTheMotivationSchedules) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const std::vector<double> budgets(3, 20.0e6);

  const StaticSchedule wcs(fps, workload::MotivationWcsEndTimes(), budgets);
  const FeasibilityReport wcs_report = VerifyWorstCase(fps, wcs, cpu);
  EXPECT_TRUE(wcs_report.feasible) << wcs_report.detail;

  const StaticSchedule acs(fps, workload::MotivationAcsEndTimes(), budgets);
  const FeasibilityReport acs_report = VerifyWorstCase(fps, acs, cpu);
  EXPECT_TRUE(acs_report.feasible) << acs_report.detail;
  // The ACS schedule is exactly chain-tight: each worst-case window is
  // 5 ms = WCEC * t_cyc(4V).
  EXPECT_NEAR(acs_report.worst_slack, 0.0, 1e-6);
}

TEST(VerifyWorstCase, RejectsUnreachableEndTime) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const std::vector<double> budgets(3, 20.0e6);
  // Task 1 end at 4 ms: needs 20 V*ms / 4 ms = 5 V > Vmax.
  const StaticSchedule bad(fps, {4.0, 15.0, 20.0}, budgets);
  const FeasibilityReport report = VerifyWorstCase(fps, bad, cpu);
  EXPECT_FALSE(report.feasible);
  EXPECT_LT(report.worst_slack, 0.0);
}

TEST(VerifyWorstCase, RejectsChainViolation) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const std::vector<double> budgets(3, 20.0e6);
  // Second end-time only 2 ms after the first; needs 5 ms at Vmax.
  const StaticSchedule bad(fps, {10.0, 12.0, 20.0}, budgets);
  EXPECT_FALSE(VerifyWorstCase(fps, bad, cpu).feasible);
}

TEST(VerifyWorstCase, RejectsBudgetLoss) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const StaticSchedule bad(fps, {10.0, 15.0, 20.0},
                           {20.0e6, 10.0e6, 20.0e6});  // half of task2 lost
  const FeasibilityReport report = VerifyWorstCase(fps, bad, cpu);
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.detail.find("sum"), std::string::npos);
}

TEST(VerifyWorstCase, RejectsEndTimeOutsideSegment) {
  const model::TaskSet set({MakeTask("hi", 5, 2.0), MakeTask("lo", 10, 2.0)});
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const fps::FullyPreemptiveSchedule fps(set);
  StaticSchedule good = BuildVmaxAsapSchedule(fps, cpu);
  // Move the low task's first sub-instance end past its segment (5.0).
  std::vector<double> ends(good.end_times());
  std::vector<double> budgets(good.worst_budgets());
  for (std::size_t u = 0; u < fps.sub_count(); ++u) {
    if (fps.sub(u).task == 1 && fps.sub(u).k == 0) {
      ends[u] = 7.0;
    }
  }
  const StaticSchedule bad(fps, ends, budgets);
  const FeasibilityReport report = VerifyWorstCase(fps, bad, cpu);
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.detail.find("segment"), std::string::npos);
}

TEST(BuildVmaxAsap, ProducesFeasibleSchedule) {
  const model::TaskSet set({MakeTask("a", 10, 8.0), MakeTask("b", 20, 10.0),
                            MakeTask("c", 40, 20.0)});
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const StaticSchedule schedule = BuildVmaxAsapSchedule(fps, cpu);
  const FeasibilityReport report = VerifyWorstCase(fps, schedule, cpu);
  EXPECT_TRUE(report.feasible) << report.detail;
}

TEST(BuildVmaxAsap, BudgetsConservePerInstance) {
  const model::TaskSet set({MakeTask("a", 10, 8.0), MakeTask("b", 30, 20.0)});
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const StaticSchedule schedule = BuildVmaxAsapSchedule(fps, cpu);
  for (const fps::InstanceRecord& rec : fps.instances()) {
    double total = 0.0;
    for (std::size_t order : rec.subs) {
      total += schedule.worst_budget(order);
    }
    EXPECT_NEAR(total, set.task(rec.info.task).wcec, 1e-9);
  }
}

TEST(BuildVmaxAsap, ThrowsOnOverload) {
  // Utilisation 1.25 at Vmax cannot be RM-schedulable.
  const model::LinearDvsModel cpu = workload::DefaultModel();  // speed 4
  const model::TaskSet set({MakeTask("a", 10, 50.0)});         // needs 12.5
  const fps::FullyPreemptiveSchedule fps(set);
  EXPECT_THROW(BuildVmaxAsapSchedule(fps, cpu), util::InfeasibleError);
  EXPECT_FALSE(IsRmSchedulable(fps, cpu));
}

TEST(BuildVmaxAsap, DetectsRmInfeasibleDespiteLowUtilization) {
  // Classic RM-infeasible structure needs non-harmonic periods and tight
  // deadlines; with U < 1 but a long low-priority task squeezed by a
  // high-priority one.  U = 0.5/1 at speed 4: a: 20 cycles / P10 -> 0.5;
  // b: 82 cycles / P41 -> 0.5.  b must place 82 cycles (20.5 time units at
  // Vmax) into 41 - 4*2.5(busy) ... verify via the exact test instead of
  // hand arithmetic: utilisation just above what fits.
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet tight({MakeTask("a", 10, 22.0),
                              MakeTask("b", 41, 90.0)});
  const fps::FullyPreemptiveSchedule fps(tight);
  // The exact test decides; we only require consistency between the two
  // entry points.
  EXPECT_EQ(IsRmSchedulable(fps, cpu),
            [&] {
              try {
                BuildVmaxAsapSchedule(fps, cpu);
                return true;
              } catch (const util::InfeasibleError&) {
                return false;
              }
            }());
}

TEST(ComputeWorstStarts, ChainMatchesAudit) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const std::vector<double> budgets(3, 20.0e6);
  const StaticSchedule acs(fps, workload::MotivationAcsEndTimes(), budgets);
  const std::vector<double> starts = ComputeWorstStarts(fps, acs, cpu);
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_DOUBLE_EQ(starts[0], 0.0);
  EXPECT_DOUBLE_EQ(starts[1], 10.0);  // after task1's end-time
  EXPECT_DOUBLE_EQ(starts[2], 15.0);
}

}  // namespace
}  // namespace dvs::sim
