// Scenario subsystem unit tests: registry contents, the clamping contract
// (every draw inside [BCEC, WCEC]), per-run determinism, the scenarios'
// distinguishing statistical signatures, degenerate windows, and the trace
// loader.
#include "workload/scenario.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "stats/summary.h"
#include "util/error.h"

namespace dvs::workload {
namespace {

model::TaskSet TwoTaskSet() {
  model::Task a;
  a.name = "a";
  a.period = 10;
  a.wcec = 1000.0;
  a.acec = 550.0;
  a.bcec = 100.0;
  model::Task b;
  b.name = "b";
  b.period = 20;
  b.wcec = 400.0;
  b.acec = 260.0;
  b.bcec = 120.0;
  return model::TaskSet({a, b});
}

/// BCEC == WCEC on every task: the collapsed-window degenerate edge.
model::TaskSet RigidSet() {
  model::Task a;
  a.name = "rigid";
  a.period = 10;
  a.wcec = 500.0;
  a.acec = 500.0;
  a.bcec = 500.0;
  return model::TaskSet({a});
}

std::vector<double> Draw(const model::WorkloadSampler& sampler,
                         model::TaskIndex task, std::uint64_t seed, int n) {
  stats::Rng rng(seed);
  std::vector<double> draws;
  draws.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    draws.push_back(sampler.SampleCycles(task, rng));
  }
  return draws;
}

TEST(ScenarioRegistry, BuiltinNamesAndErrors) {
  const ScenarioRegistry& registry = ScenarioRegistry::Builtin();
  const std::vector<std::string> expected = {
      "iid-normal", "bimodal", "bursty", "heavy-tail", "correlated", "trace"};
  EXPECT_EQ(registry.Names(), expected);
  for (const std::string& name : expected) {
    EXPECT_NO_THROW(registry.Get(name));
    EXPECT_FALSE(registry.Description(name).empty());
  }
  EXPECT_THROW(registry.Get("no-such-scenario"), util::InvalidArgumentError);
}

// The clamping contract of workload/scenario.h: whatever the process, every
// draw lands inside the task's [BCEC, WCEC] window, so feasibility analysis
// never sees the scenario axis.
TEST(Scenarios, EveryBuiltinStaysInsideTheWindow) {
  const model::TaskSet set = TwoTaskSet();
  for (const std::string& name : ScenarioRegistry::Builtin().Names()) {
    const auto sampler =
        ScenarioRegistry::Builtin().Get(name).MakeSampler(set, 6.0);
    for (model::TaskIndex task = 0; task < set.size(); ++task) {
      const model::Task& t = set.task(task);
      for (double x : Draw(*sampler, task, 99, 5000)) {
        ASSERT_GE(x, t.bcec) << name << " task " << task;
        ASSERT_LE(x, t.wcec) << name << " task " << task;
      }
    }
  }
}

// A fresh sampler + the same seed must reproduce the identical sequence:
// the per-run-state contract behind paired-seed comparisons.
TEST(Scenarios, FreshSamplerSameSeedIsBitIdentical) {
  const model::TaskSet set = TwoTaskSet();
  for (const std::string& name : ScenarioRegistry::Builtin().Names()) {
    const model::WorkloadScenario& scenario =
        ScenarioRegistry::Builtin().Get(name);
    const auto first = scenario.MakeSampler(set, 6.0);
    const auto second = scenario.MakeSampler(set, 6.0);
    EXPECT_EQ(Draw(*first, 0, 7, 500), Draw(*second, 0, 7, 500)) << name;
  }
}

// Collapsed windows: every scenario degenerates to the fixed WCEC draw.
TEST(Scenarios, CollapsedWindowDrawsWcecEverywhere) {
  const model::TaskSet set = RigidSet();
  for (const std::string& name : ScenarioRegistry::Builtin().Names()) {
    const auto sampler =
        ScenarioRegistry::Builtin().Get(name).MakeSampler(set, 6.0);
    for (double x : Draw(*sampler, 0, 3, 200)) {
      ASSERT_DOUBLE_EQ(x, 500.0) << name;
    }
  }
}

// iid-normal is the pre-scenario default: byte-identical draws to a
// directly constructed TruncatedNormalWorkload.
TEST(Scenarios, IidNormalMatchesLegacySampler) {
  const model::TaskSet set = TwoTaskSet();
  const auto scenario =
      ScenarioRegistry::Builtin().Get("iid-normal").MakeSampler(set, 6.0);
  const model::TruncatedNormalWorkload legacy(set, 6.0);
  EXPECT_EQ(Draw(*scenario, 0, 42, 1000), Draw(legacy, 0, 42, 1000));
  EXPECT_EQ(Draw(*scenario, 1, 43, 1000), Draw(legacy, 1, 43, 1000));
}

// Bimodal: the mid-window valley between the two modes is (nearly) empty —
// the signature a unimodal law cannot produce.
TEST(Scenarios, BimodalLeavesTheValleyEmpty) {
  const model::TaskSet set = TwoTaskSet();  // task 0: window [100, 1000]
  const auto sampler =
      ScenarioRegistry::Builtin().Get("bimodal").MakeSampler(set, 6.0);
  int low = 0;
  int high = 0;
  int valley = 0;
  for (double x : Draw(*sampler, 0, 17, 20000)) {
    if (x < 500.0) {
      ++low;
    } else if (x > 700.0) {
      ++high;
    } else {
      ++valley;
    }
  }
  EXPECT_GT(low, 12000);   // ~75% hit mode near BCEC + 0.2 span
  EXPECT_GT(high, 3000);   // ~25% miss mode near WCEC
  EXPECT_LT(valley, 400);  // the gap between modes stays near-empty
}

// Bursty: consecutive jobs share a phase far more often than i.i.d. draws
// would, and both phases are actually visited.
TEST(Scenarios, BurstyPhasesAreSticky) {
  const model::TaskSet set = TwoTaskSet();
  const auto sampler =
      ScenarioRegistry::Builtin().Get("bursty").MakeSampler(set, 6.0);
  const std::vector<double> draws = Draw(*sampler, 0, 23, 20000);
  const double midpoint = 100.0 + 0.55 * 900.0;  // between the phase means
  int heavy = 0;
  int same_side = 0;
  for (std::size_t i = 0; i < draws.size(); ++i) {
    const bool is_heavy = draws[i] > midpoint;
    heavy += is_heavy ? 1 : 0;
    if (i > 0 && is_heavy == (draws[i - 1] > midpoint)) {
      ++same_side;
    }
  }
  // Stationary split is 1/3 heavy (p 0.1 vs 0.2); stickiness keeps ~85% of
  // adjacent pairs on one side, far above the ~5/9 an i.i.d. split gives.
  EXPECT_GT(heavy, 4000);
  EXPECT_LT(heavy, 10000);
  EXPECT_GT(static_cast<double>(same_side) /
                static_cast<double>(draws.size() - 1),
            0.75);
}

// Heavy-tail: the bulk hugs BCEC, yet rare stragglers still reach deep
// into the window (the fraction-space Pareto with shape 1.1 / cap 100
// puts ~94% of the mass within span/9 of BCEC and ~35 in 10000 beyond
// 2/3 of the window — deterministic seed, so the counts are exact
// regressions).
TEST(Scenarios, HeavyTailBulkNearBcecWithStragglers) {
  const model::TaskSet set = TwoTaskSet();
  const auto sampler =
      ScenarioRegistry::Builtin().Get("heavy-tail").MakeSampler(set, 6.0);
  const std::vector<double> draws = Draw(*sampler, 0, 29, 50000);
  int near_bcec = 0;
  int stragglers = 0;
  for (double x : draws) {
    near_bcec += x < 200.0 ? 1 : 0;    // within span/9 of BCEC
    stragglers += x > 700.0 ? 1 : 0;   // beyond 2/3 of the window
  }
  EXPECT_GT(near_bcec, 45000);
  EXPECT_GE(stragglers, 5);
}

// Correlated: positive lag-1 autocorrelation, absent from the i.i.d. law.
TEST(Scenarios, CorrelatedHasPositiveLag1Autocorrelation) {
  const model::TaskSet set = TwoTaskSet();
  const auto correlated =
      ScenarioRegistry::Builtin().Get("correlated").MakeSampler(set, 6.0);
  const auto iid =
      ScenarioRegistry::Builtin().Get("iid-normal").MakeSampler(set, 6.0);

  const auto lag1 = [](const std::vector<double>& xs) {
    stats::OnlineStats all;
    for (double x : xs) {
      all.Add(x);
    }
    const double mean = all.mean();
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      den += (xs[i] - mean) * (xs[i] - mean);
      if (i > 0) {
        num += (xs[i] - mean) * (xs[i - 1] - mean);
      }
    }
    return num / den;
  };

  EXPECT_GT(lag1(Draw(*correlated, 0, 31, 20000)), 0.6);
  EXPECT_LT(std::abs(lag1(Draw(*iid, 0, 31, 20000))), 0.1);
}

// Trace: deterministic (no rng consumption), cyclic, phase-offset per task.
TEST(Scenarios, TraceReplaysFractionsCyclically) {
  const model::TaskSet set = TwoTaskSet();
  const auto scenario = MakeTraceScenario({0.0, 0.5, 1.0});
  const auto sampler = scenario->MakeSampler(set, 6.0);

  // Task 0 (window [100, 1000], phase 0): 100, 550, 1000, 100, ...
  const std::vector<double> a = Draw(*sampler, 0, 1, 6);
  EXPECT_EQ(a, (std::vector<double>{100.0, 550.0, 1000.0, 100.0, 550.0,
                                    1000.0}));
  // Task 1 (window [120, 400], phase 1): starts at fraction 0.5.
  const std::vector<double> b = Draw(*sampler, 1, 1, 3);
  EXPECT_EQ(b, (std::vector<double>{260.0, 400.0, 120.0}));
}

TEST(Scenarios, SingleEntryTraceIsConstant) {
  const model::TaskSet set = TwoTaskSet();
  const auto sampler = MakeTraceScenario({0.25})->MakeSampler(set, 6.0);
  for (double x : Draw(*sampler, 0, 1, 10)) {
    EXPECT_DOUBLE_EQ(x, 100.0 + 0.25 * 900.0);
  }
}

TEST(Scenarios, TraceClampsOutOfRangeFractions) {
  const model::TaskSet set = TwoTaskSet();
  const auto sampler = MakeTraceScenario({-0.5, 1.5})->MakeSampler(set, 6.0);
  const std::vector<double> draws = Draw(*sampler, 0, 1, 2);
  EXPECT_DOUBLE_EQ(draws[0], 100.0);   // clamped to fraction 0
  EXPECT_DOUBLE_EQ(draws[1], 1000.0);  // clamped to fraction 1
}

TEST(Scenarios, EmptyTraceRejected) {
  EXPECT_THROW(MakeTraceScenario({}), util::InvalidArgumentError);
}

TEST(LoadTraceScenario, ParsesCsvWithHeaderCommentsAndExtraColumns) {
  const std::string path = ::testing::TempDir() + "trace_scenario_test.csv";
  {
    std::ofstream out(path);
    out << "# recorded 2026-07-31 on board A\n"
        << "fraction,job_id\n"
        << "0.0,0\n"
        << "\n"
        << "0.5,1\n"
        << "1.0,2\n";
  }
  const auto scenario = LoadTraceScenario(path);
  const model::TaskSet set = TwoTaskSet();
  const auto sampler = scenario->MakeSampler(set, 6.0);
  EXPECT_EQ(Draw(*sampler, 0, 1, 3),
            (std::vector<double>{100.0, 550.0, 1000.0}));
  std::remove(path.c_str());
}

TEST(LoadTraceScenario, RejectsAbsoluteCycleRecordings) {
  // A recording in raw cycles (not normalised fractions) must fail loudly
  // instead of clamping every job to WCEC.
  const std::string path = ::testing::TempDir() + "trace_scenario_cycles.csv";
  {
    std::ofstream out(path);
    out << "1200\n950\n1043\n";
  }
  EXPECT_THROW(LoadTraceScenario(path), util::Error);
  std::remove(path.c_str());
}

TEST(LoadTraceScenario, RejectsMissingAndEmptyFiles) {
  EXPECT_THROW(LoadTraceScenario("/nonexistent-dir/trace.csv"), util::Error);
  const std::string path = ::testing::TempDir() + "trace_scenario_empty.csv";
  {
    std::ofstream out(path);
    out << "# only comments\n";
  }
  EXPECT_THROW(LoadTraceScenario(path), util::Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dvs::workload
