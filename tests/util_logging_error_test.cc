// Tests for the error hierarchy and the logger.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/error.h"
#include "util/json.h"
#include "util/logging.h"

namespace dvs::util {
namespace {

TEST(Error, HierarchyIsCatchable) {
  const auto as_base = [](const Error& e) { return std::string(e.what()); };
  EXPECT_NE(as_base(InvalidArgumentError("bad arg")).find("bad arg"),
            std::string::npos);
  EXPECT_NE(as_base(InfeasibleError("no way")).find("no way"),
            std::string::npos);
  EXPECT_NE(as_base(SolverError("diverged")).find("diverged"),
            std::string::npos);
  EXPECT_NE(as_base(InternalError("bug")).find("bug"), std::string::npos);
}

TEST(Error, RequireMacroThrowsWithLocation) {
  try {
    ACS_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "expected a throw";
  } catch (const InvalidArgumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("util_logging_error_test"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckMacroThrowsInternal) {
  EXPECT_THROW(ACS_CHECK(false, "invariant"), InternalError);
  EXPECT_NO_THROW(ACS_CHECK(true, "invariant"));
}

TEST(LogLevel, NamesRoundTrip) {
  for (LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    EXPECT_EQ(ParseLogLevel(LogLevelName(level)), level);
  }
  EXPECT_THROW(ParseLogLevel("loud"), InvalidArgumentError);
}

class LoggerCapture : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Logger::Instance().level();
    Logger::Instance().set_stream(&captured_);
  }
  void TearDown() override {
    Logger::Instance().set_stream(nullptr);
    Logger::Instance().set_level(saved_level_);
  }
  std::ostringstream captured_;
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LoggerCapture, RespectsLevelThreshold) {
  Logger::Instance().set_level(LogLevel::kWarn);
  ACS_LOG_DEBUG << "quiet";
  ACS_LOG_WARN << "loud";
  const std::string out = captured_.str();
  EXPECT_EQ(out.find("quiet"), std::string::npos);
  EXPECT_NE(out.find("loud"), std::string::npos);
  EXPECT_NE(out.find("[warn]"), std::string::npos);
}

TEST_F(LoggerCapture, OffSilencesEverything) {
  Logger::Instance().set_level(LogLevel::kOff);
  ACS_LOG_ERROR << "nope";
  EXPECT_TRUE(captured_.str().empty());
}

TEST_F(LoggerCapture, StreamStyleComposition) {
  Logger::Instance().set_level(LogLevel::kInfo);
  ACS_LOG_INFO << "x=" << 42 << " y=" << 1.5;
  EXPECT_NE(captured_.str().find("x=42 y=1.5"), std::string::npos);
}

TEST(LogLevelEnv, FromEnvValueFallsBackOnBadInput) {
  // Pure function behind the ACS_LOG_LEVEL constructor init — testable
  // without mutating the process environment.
  EXPECT_EQ(LogLevelFromEnvValue(nullptr, LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(LogLevelFromEnvValue("debug", LogLevel::kWarn), LogLevel::kDebug);
  EXPECT_EQ(LogLevelFromEnvValue("off", LogLevel::kInfo), LogLevel::kOff);
  // A typo keeps the compiled default instead of aborting startup.
  EXPECT_EQ(LogLevelFromEnvValue("loud", LogLevel::kError), LogLevel::kError);
  EXPECT_EQ(LogLevelFromEnvValue("", LogLevel::kWarn), LogLevel::kWarn);
}

/// Capture fixture that also restores format/decoration state, so these
/// tests cannot leak decorated output into other tests' captures.
class LoggerFormatCapture : public LoggerCapture {
 protected:
  void TearDown() override {
    Logger::Instance().set_format(LogFormat::kPlain);
    Logger::Instance().set_timestamps(false);
    Logger::Instance().set_thread_ids(false);
    LoggerCapture::TearDown();
  }
};

TEST_F(LoggerFormatCapture, DefaultFormatIsByteStable) {
  // The byte contract scripts grep against: no decorations by default.
  Logger::Instance().set_level(LogLevel::kWarn);
  ACS_LOG_WARN << "plain message";
  EXPECT_EQ(captured_.str(), "[warn] plain message\n");
}

TEST_F(LoggerFormatCapture, TimestampAndThreadIdDecorationsPrefixTheLine) {
  Logger::Instance().set_level(LogLevel::kWarn);
  Logger::Instance().set_timestamps(true);
  Logger::Instance().set_thread_ids(true);
  ACS_LOG_WARN << "decorated";
  const std::string out = captured_.str();
  // "YYYY-MM-DDTHH:MM:SSZ [warn] [tid N] decorated\n"
  ASSERT_GE(out.size(), 21u);
  EXPECT_EQ(out[4], '-');
  EXPECT_EQ(out[10], 'T');
  EXPECT_EQ(out[19], 'Z');
  EXPECT_NE(out.find(" [warn] [tid "), std::string::npos) << out;
  EXPECT_NE(out.find("] decorated\n"), std::string::npos) << out;
}

TEST_F(LoggerFormatCapture, JsonlSinkEmitsOneValidObjectPerLine) {
  Logger::Instance().set_level(LogLevel::kInfo);
  Logger::Instance().set_format(LogFormat::kJsonl);
  Logger::Instance().set_timestamps(true);
  Logger::Instance().set_thread_ids(true);
  EXPECT_EQ(Logger::Instance().format(), LogFormat::kJsonl);
  ACS_LOG_INFO << "with \"quotes\" and \\ backslash";
  ACS_LOG_WARN << "second line";

  std::istringstream lines(captured_.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const JsonValue record = ParseJson(line);
    ASSERT_TRUE(record.IsObject()) << line;
    EXPECT_FALSE(record.StringAt("ts").empty());
    EXPECT_FALSE(record.StringAt("tid").empty());
    EXPECT_FALSE(record.StringAt("msg").empty());
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_NE(captured_.str().find("with \\\"quotes\\\""), std::string::npos);
}

}  // namespace
}  // namespace dvs::util
