// Tests for the error hierarchy and the logger.
#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"
#include "util/logging.h"

namespace dvs::util {
namespace {

TEST(Error, HierarchyIsCatchable) {
  const auto as_base = [](const Error& e) { return std::string(e.what()); };
  EXPECT_NE(as_base(InvalidArgumentError("bad arg")).find("bad arg"),
            std::string::npos);
  EXPECT_NE(as_base(InfeasibleError("no way")).find("no way"),
            std::string::npos);
  EXPECT_NE(as_base(SolverError("diverged")).find("diverged"),
            std::string::npos);
  EXPECT_NE(as_base(InternalError("bug")).find("bug"), std::string::npos);
}

TEST(Error, RequireMacroThrowsWithLocation) {
  try {
    ACS_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "expected a throw";
  } catch (const InvalidArgumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("util_logging_error_test"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckMacroThrowsInternal) {
  EXPECT_THROW(ACS_CHECK(false, "invariant"), InternalError);
  EXPECT_NO_THROW(ACS_CHECK(true, "invariant"));
}

TEST(LogLevel, NamesRoundTrip) {
  for (LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    EXPECT_EQ(ParseLogLevel(LogLevelName(level)), level);
  }
  EXPECT_THROW(ParseLogLevel("loud"), InvalidArgumentError);
}

class LoggerCapture : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Logger::Instance().level();
    Logger::Instance().set_stream(&captured_);
  }
  void TearDown() override {
    Logger::Instance().set_stream(nullptr);
    Logger::Instance().set_level(saved_level_);
  }
  std::ostringstream captured_;
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LoggerCapture, RespectsLevelThreshold) {
  Logger::Instance().set_level(LogLevel::kWarn);
  ACS_LOG_DEBUG << "quiet";
  ACS_LOG_WARN << "loud";
  const std::string out = captured_.str();
  EXPECT_EQ(out.find("quiet"), std::string::npos);
  EXPECT_NE(out.find("loud"), std::string::npos);
  EXPECT_NE(out.find("[warn]"), std::string::npos);
}

TEST_F(LoggerCapture, OffSilencesEverything) {
  Logger::Instance().set_level(LogLevel::kOff);
  ACS_LOG_ERROR << "nope";
  EXPECT_TRUE(captured_.str().empty());
}

TEST_F(LoggerCapture, StreamStyleComposition) {
  Logger::Instance().set_level(LogLevel::kInfo);
  ACS_LOG_INFO << "x=" << 42 << " y=" << 1.5;
  EXPECT_NE(captured_.str().find("x=42 y=1.5"), std::string::npos);
}

}  // namespace
}  // namespace dvs::util
