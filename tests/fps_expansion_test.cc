// Tests for the fully preemptive schedule expansion (paper §3.1, Figs. 3-4).
#include "fps/expansion.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "stats/rng.h"
#include "util/error.h"
#include "util/math.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::fps {
namespace {

model::Task MakeTask(std::string name, std::int64_t period,
                     double wcec = 1.0) {
  model::Task t;
  t.name = std::move(name);
  t.period = period;
  t.wcec = wcec;
  t.acec = 0.6 * wcec;
  t.bcec = 0.2 * wcec;
  return t;
}

TEST(Expansion, SingleTaskHasOneSubPerInstance) {
  const model::TaskSet set({MakeTask("only", 5)});
  const FullyPreemptiveSchedule fps(set);
  EXPECT_EQ(fps.sub_count(), 1u);
  EXPECT_EQ(fps.instance_count(), 1u);
  const SubInstance& sub = fps.sub(0);
  EXPECT_DOUBLE_EQ(sub.seg_begin, 0.0);
  EXPECT_DOUBLE_EQ(sub.seg_end, 5.0);
  EXPECT_EQ(fps.max_subs_per_instance(), 1);
}

TEST(Expansion, PaperFigure3And4Structure) {
  // Reconstruction of the Fig. 3/4 example: T1 period 3 (high priority),
  // T2 and T3 period 9.  T2/T3 are cut by T1's releases at 3 and 6 into
  // three sub-instances each; T1's instances stay whole.
  const model::TaskSet set(
      {MakeTask("T1", 3), MakeTask("T2", 9), MakeTask("T3", 9)});
  const FullyPreemptiveSchedule fps(set);
  EXPECT_EQ(set.hyper_period(), 9);
  // 3 T1 instances + 3 T2 subs + 3 T3 subs.
  EXPECT_EQ(fps.sub_count(), 9u);
  EXPECT_EQ(fps.max_subs_per_instance(), 3);
  // Total order: within each segment start, priority order T1, T2, T3.
  EXPECT_EQ(fps.DescribeOrder(),
            "T1[0].0 T2[0].0 T3[0].0 T1[1].0 T2[0].1 T3[0].1 "
            "T1[2].0 T2[0].2 T3[0].2");
}

TEST(Expansion, EqualPeriodTasksDoNotCutEachOther) {
  const model::TaskSet set({MakeTask("a", 10), MakeTask("b", 10)});
  const FullyPreemptiveSchedule fps(set);
  EXPECT_EQ(fps.sub_count(), 2u);  // one whole sub-instance each
  EXPECT_EQ(fps.max_subs_per_instance(), 1);
}

TEST(Expansion, CutsOnlyInsideTheWindow) {
  // T2's instance [0, 10) is cut by T1's releases at 2,4,6,8 (not 0 or 10).
  const model::TaskSet set({MakeTask("T1", 2), MakeTask("T2", 10)});
  const FullyPreemptiveSchedule fps(set);
  const InstanceRecord* t2_instance = nullptr;
  for (const InstanceRecord& rec : fps.instances()) {
    if (rec.info.task == 1) {
      t2_instance = &rec;
    }
  }
  ASSERT_NE(t2_instance, nullptr);
  EXPECT_EQ(t2_instance->subs.size(), 5u);
  double cursor = 0.0;
  for (std::size_t order : t2_instance->subs) {
    const SubInstance& sub = fps.sub(order);
    EXPECT_DOUBLE_EQ(sub.seg_begin, cursor);
    cursor = sub.seg_end;
  }
  EXPECT_DOUBLE_EQ(cursor, 10.0);
}

TEST(Expansion, SegmentEndIsAHigherPriorityReleaseOrDeadline) {
  const model::TaskSet set(
      {MakeTask("hi", 4), MakeTask("mid", 6), MakeTask("lo", 12)});
  const FullyPreemptiveSchedule fps(set);
  for (const SubInstance& sub : fps.subs()) {
    if (util::AlmostEqual(sub.seg_end, sub.deadline)) {
      continue;  // last segment
    }
    // seg_end must coincide with some higher-priority release.
    bool found = false;
    for (model::TaskIndex other = 0; other < set.size(); ++other) {
      if (!set.CanPreempt(other, sub.task)) continue;
      const double p = static_cast<double>(set.task(other).period);
      const double ratio = sub.seg_end / p;
      if (util::AlmostEqual(ratio, std::round(ratio))) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "seg_end " << sub.seg_end << " of task "
                       << set.task(sub.task).name;
  }
}

TEST(Expansion, TotalOrderSortedBySegmentStartThenRank) {
  const model::TaskSet set(
      {MakeTask("a", 5), MakeTask("b", 10), MakeTask("c", 20)});
  const FullyPreemptiveSchedule fps(set);
  for (std::size_t u = 1; u < fps.sub_count(); ++u) {
    const SubInstance& prev = fps.sub(u - 1);
    const SubInstance& cur = fps.sub(u);
    if (util::AlmostEqual(prev.seg_begin, cur.seg_begin)) {
      EXPECT_TRUE(set.OutranksForDispatch(prev.task, cur.task) ||
                  prev.task == cur.task);
    } else {
      EXPECT_LT(prev.seg_begin, cur.seg_begin);
    }
  }
}

TEST(Expansion, ValidatePassesAndOrderIndicesConsistent) {
  const model::TaskSet set(
      {MakeTask("a", 10), MakeTask("b", 25), MakeTask("c", 50)});
  const FullyPreemptiveSchedule fps(set);
  EXPECT_NO_THROW(fps.Validate());
  for (std::size_t u = 0; u < fps.sub_count(); ++u) {
    EXPECT_EQ(fps.sub(u).order, u);
  }
  // Every sub-instance appears in exactly one parent record.
  std::set<std::size_t> seen;
  for (const InstanceRecord& rec : fps.instances()) {
    for (std::size_t order : rec.subs) {
      EXPECT_TRUE(seen.insert(order).second);
    }
  }
  EXPECT_EQ(seen.size(), fps.sub_count());
}

TEST(Expansion, CountMatchesHelper) {
  const model::TaskSet set({MakeTask("a", 4), MakeTask("b", 12)});
  const FullyPreemptiveSchedule fps(set);
  EXPECT_EQ(CountSubInstances(set), fps.sub_count());
}

TEST(Expansion, OutOfRangeAccessThrows) {
  const model::TaskSet set({MakeTask("a", 4)});
  const FullyPreemptiveSchedule fps(set);
  EXPECT_THROW(fps.sub(99), util::InvalidArgumentError);
  EXPECT_THROW(fps.instance(99), util::InvalidArgumentError);
}

// Property sweep: structural invariants hold for random task sets.
class ExpansionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExpansionPropertyTest, InvariantsOnRandomSets) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2 + GetParam() % 7;
  gen.bcec_wcec_ratio = 0.5;
  const model::TaskSet set = workload::GenerateRandomTaskSet(gen, cpu, rng);
  const FullyPreemptiveSchedule fps(set);
  EXPECT_NO_THROW(fps.Validate());
  EXPECT_LE(fps.sub_count(), 1000u);  // generator enforces the paper's cap

  // Per instance: segments tile [release, deadline]; k ascends.
  for (const InstanceRecord& rec : fps.instances()) {
    double cursor = rec.info.release;
    int k = 0;
    for (std::size_t order : rec.subs) {
      const SubInstance& sub = fps.sub(order);
      EXPECT_EQ(sub.k, k++);
      EXPECT_NEAR(sub.seg_begin, cursor, 1e-9);
      EXPECT_GT(sub.seg_end, sub.seg_begin);
      EXPECT_DOUBLE_EQ(sub.deadline, rec.info.deadline);
      cursor = sub.seg_end;
    }
    EXPECT_NEAR(cursor, rec.info.deadline, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpansionPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace dvs::fps
