// EvalWorkspace contract tests: workspace-backed evaluation is bit-identical
// to the self-contained path, prepared-cell caching never changes results,
// the analytic gradients cross-check against finite differences when
// evaluated through shared scratch, and the steady-state solver/sim kernels
// allocate nothing once warm.
#include "core/eval_workspace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>

#include "core/api.h"
#include "opt/finite_diff.h"
#include "runner/csv_sink.h"
#include "runner/run_grid.h"
#include "workload/motivation.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

// ---- Allocation counter -----------------------------------------------------
// Counts every global operator new.  The zero-allocation assertions measure
// the delta across a single warmed call, so allocations made by the test
// harness outside those windows do not matter.
namespace {
std::atomic<long> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dvs::core {
namespace {

ExperimentOptions FastOptions() {
  ExperimentOptions options;
  options.hyper_periods = 20;
  options.seed = 7;
  return options;
}

bool SameOutcome(const MethodOutcome& a, const MethodOutcome& b) {
  return a.predicted_energy == b.predicted_energy &&
         a.measured_energy == b.measured_energy &&
         a.deadline_misses == b.deadline_misses &&
         a.voltage_switches == b.voltage_switches &&
         a.used_fallback == b.used_fallback;
}

TEST(EvalWorkspace, WorkspaceBackedOutcomesBitIdenticalToFresh) {
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const model::TaskSet set = workload::MotivationTaskSet();
  const ExperimentOptions options = FastOptions();
  const MethodRegistry& registry = MethodRegistry::Builtin();
  const fps::FullyPreemptiveSchedule fps(set);

  EvalWorkspace workspace;
  for (const std::string& name : registry.Names()) {
    // Self-contained reference.
    MethodContext fresh(fps, cpu, options.scheduler);
    const MethodOutcome expected =
        EvaluateMethod(registry.Get(name), fresh, options);

    // Workspace-backed, twice: the second pass reuses every warm buffer
    // and the cached solves.
    for (int pass = 0; pass < 2; ++pass) {
      EvalWorkspace::PreparedCell& prep =
          workspace.Prepare(1, set, cpu, options.scheduler);
      MethodContext context(prep.fps, cpu, options.scheduler, workspace,
                            prep.solves);
      const MethodOutcome actual =
          EvaluateMethod(registry.Get(name), context, options);
      EXPECT_TRUE(SameOutcome(expected, actual))
          << name << " pass " << pass;
    }
  }
}

TEST(EvalWorkspace, PrepareVerifiesTaskSetBeforeReuse) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet motivation = workload::MotivationTaskSet();

  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 3;
  stats::Rng rng(11);
  const model::TaskSet random_set =
      workload::GenerateRandomTaskSet(gen, cpu, rng);

  EXPECT_TRUE(SameTaskSet(motivation, motivation));
  EXPECT_FALSE(SameTaskSet(motivation, random_set));

  const SchedulerOptions scheduler;
  EvalWorkspace workspace;
  EvalWorkspace::PreparedCell& first =
      workspace.Prepare(42, motivation, cpu, scheduler);
  EXPECT_EQ(&first, &workspace.Prepare(42, motivation, cpu, scheduler));
  // A colliding key with a different set must rebuild, not reuse.
  EvalWorkspace::PreparedCell& second =
      workspace.Prepare(42, random_set, cpu, scheduler);
  EXPECT_TRUE(SameTaskSet(second.set, random_set));
  // Both entries stay live (MRU cache), so the original still hits.
  EXPECT_TRUE(SameTaskSet(
      workspace.Prepare(42, motivation, cpu, scheduler).set, motivation));

  // Solves depend on the model and solver options too: a different model
  // object or different scheduler options must miss, never serve the
  // original entry's solves.
  const model::LinearDvsModel other_cpu = workload::DefaultModel();
  EXPECT_NE(&workspace.Prepare(42, motivation, other_cpu, scheduler),
            &workspace.Prepare(42, motivation, cpu, scheduler));
  SchedulerOptions loose = scheduler;
  loose.alm.feasibility_tol *= 10.0;
  EXPECT_FALSE(SameSchedulerOptions(scheduler, loose));
  EXPECT_NE(&workspace.Prepare(42, motivation, cpu, loose),
            &workspace.Prepare(42, motivation, cpu, scheduler));
}

TEST(EvalWorkspace, SubsetKeyDependsOnOwnedTasks) {
  const std::uint64_t base = 99;
  EXPECT_EQ(SubsetKey(base, {0, 2}), SubsetKey(base, {0, 2}));
  EXPECT_NE(SubsetKey(base, {0, 2}), SubsetKey(base, {0, 3}));
  EXPECT_NE(SubsetKey(base, {0, 2}), SubsetKey(base + 1, {0, 2}));
  EXPECT_NE(SubsetKey(base, {0, 2}), SubsetKey(base, {2, 0}));
}

// Analytic gradients, evaluated through a shared workspace scratch, must
// match central finite differences on preset-derived task sets — and must
// be bit-identical to a fresh objective evaluating the same point.
TEST(EvalWorkspace, SharedScratchGradientsCrossCheckFiniteDifferences) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  EvalWorkspace workspace;

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    workload::RandomTaskSetOptions gen;
    gen.num_tasks = 3 + static_cast<int>(seed % 3);
    gen.bcec_wcec_ratio = 0.3;
    stats::Rng rng(seed * 131 + 7);
    const model::TaskSet set = workload::GenerateRandomTaskSet(gen, cpu, rng);
    const fps::FullyPreemptiveSchedule fps(set);

    for (const Scenario scenario : {Scenario::kAverage, Scenario::kWorst}) {
      const EnergyObjective shared(fps, cpu, scenario,
                                   &workspace.objective_scratch());
      const EnergyObjective fresh(fps, cpu, scenario);

      // A jittered interior point away from the clamp kinks.
      stats::Rng jitter(seed * 977 + 13);
      opt::Vector x =
          shared.PackSchedule(sim::BuildVmaxAsapSchedule(fps, cpu));
      const std::vector<double>& cap = fps.effective_end_bounds();
      for (std::size_t u = 0; u < fps.sub_count(); ++u) {
        const double frac = jitter.Uniform(0.5, 0.9);
        x[u] = fps.sub(u).seg_begin +
               frac * (cap[u] - fps.sub(u).seg_begin);
      }
      // Budgets jittered around a uniform split: the ASAP budgets sit
      // exactly on the w = 0 and V = Vmax kinks, where central differences
      // straddle one-sided derivatives.
      for (const fps::InstanceRecord& rec : fps.instances()) {
        if (rec.subs.size() < 2) {
          continue;
        }
        const double share = set.task(rec.info.task).wcec /
                             static_cast<double>(rec.subs.size());
        for (std::size_t order : rec.subs) {
          x[shared.budget_index(order)] = share * jitter.Uniform(0.7, 1.3);
        }
      }
      shared.BuildFeasibleSet()->Project(x);

      opt::Vector shared_grad;
      opt::Vector fresh_grad;
      const double shared_value = shared.ValueAndGradient(x, shared_grad);
      const double fresh_value = fresh.ValueAndGradient(x, fresh_grad);
      EXPECT_EQ(shared_value, fresh_value) << "seed " << seed;
      ASSERT_EQ(shared_grad.size(), fresh_grad.size());
      for (std::size_t i = 0; i < shared_grad.size(); ++i) {
        EXPECT_EQ(shared_grad[i], fresh_grad[i])
            << "seed " << seed << " coordinate " << i;
      }

      // Tolerance-bounded FD cross-check (robust to a couple of exact
      // kink-straddling coordinates, as in core_formulation_test).
      const opt::Vector numeric =
          opt::FiniteDifferenceGradient(shared, x, 1e-7);
      std::vector<double> errors(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        errors[i] =
            std::fabs(shared_grad[i] - numeric[i]) /
            std::max({std::fabs(shared_grad[i]), std::fabs(numeric[i]), 1.0});
      }
      std::sort(errors.begin(), errors.end());
      const double robust =
          errors[errors.size() >= 3 ? errors.size() - 3 : 0];
      EXPECT_LT(robust, 1e-3) << "seed " << seed;
    }
  }
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Same grid, fresh vs. reused workspaces: the streamed per-cell CSV must be
// byte-identical across (a) a run with call-local workspaces, (b) a cold
// run with caller-provided workspaces, and (c) a warm re-run against those
// same workspaces.
TEST(EvalWorkspace, GridCsvBitIdenticalFreshVsReusedWorkspace) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 3;
  gen.bcec_wcec_ratio = 0.4;

  runner::ExperimentGrid grid;
  grid.dvs = &cpu;
  grid.sources = {runner::RandomSource("ws-test", gen, 2)};
  grid.sigma_divisors = {4.0, 8.0};  // sigma axis shares SetIndex -> cache hits
  grid.hyper_periods = 15;
  grid.methods = {"acs", "wcs"};

  const auto run = [&](const std::string& path,
                       std::vector<core::EvalWorkspace>* workspaces) {
    runner::CsvSink sink(path);
    runner::RunOptions options;
    options.threads = 1;
    options.sink = &sink;
    options.workspaces = workspaces;
    runner::RunGrid(grid, options);
  };

  const std::string fresh_path = testing::TempDir() + "/ws_fresh.csv";
  const std::string cold_path = testing::TempDir() + "/ws_cold.csv";
  const std::string warm_path = testing::TempDir() + "/ws_warm.csv";

  run(fresh_path, nullptr);
  std::vector<core::EvalWorkspace> workspaces;
  run(cold_path, &workspaces);
  run(warm_path, &workspaces);  // fully warm: caches + buffers

  const std::string fresh = ReadFile(fresh_path);
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh, ReadFile(cold_path));
  EXPECT_EQ(fresh, ReadFile(warm_path));
}

// The steady-state kernels must not touch the heap once their buffers are
// warm: the objective's value+gradient evaluation and the engine's
// workspace simulation are the two inner loops of every grid cell.
TEST(EvalWorkspace, WarmKernelsAllocateNothing) {
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const model::TaskSet set = workload::MotivationTaskSet();
  const fps::FullyPreemptiveSchedule fps(set);
  EvalWorkspace workspace;

  // --- objective evaluation -------------------------------------------------
  const EnergyObjective objective(fps, cpu, Scenario::kAverage,
                                  &workspace.objective_scratch());
  opt::Vector x = objective.PackSchedule(sim::BuildVmaxAsapSchedule(fps, cpu));
  opt::Vector grad;
  (void)objective.ValueAndGradient(x, grad);  // warm-up sizes every buffer

  const long before_eval = g_alloc_count.load(std::memory_order_relaxed);
  const double value = objective.ValueAndGradient(x, grad);
  const long eval_allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before_eval;
  EXPECT_EQ(eval_allocs, 0) << "objective evaluation allocated";
  EXPECT_GT(value, 0.0);

  // --- engine simulation ----------------------------------------------------
  const sim::StaticSchedule schedule = sim::BuildVmaxAsapSchedule(fps, cpu);
  const model::TruncatedNormalWorkload sampler(set, 6.0);
  const sim::AnyPolicy policy{sim::GreedyReclaimPolicy(cpu)};
  sim::SimOptions sim_options;
  sim_options.hyper_periods = 10;

  stats::Rng warm_rng(3);
  (void)sim::Simulate(fps, schedule, cpu, policy, sampler, warm_rng,
                      sim_options, workspace.engine());

  stats::Rng rng(3);
  const long before_sim = g_alloc_count.load(std::memory_order_relaxed);
  const sim::SimResult& sim = sim::Simulate(fps, schedule, cpu, policy,
                                            sampler, rng, sim_options,
                                            workspace.engine());
  const long sim_allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before_sim;
  EXPECT_EQ(sim_allocs, 0) << "warm simulation allocated";
  EXPECT_EQ(sim.deadline_misses, 0);
  EXPECT_GT(sim.total_energy, 0.0);
}

}  // namespace
}  // namespace dvs::core
