// Tests for the end-to-end experiment pipeline.
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "workload/motivation.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::core {
namespace {

TEST(Pipeline, MotivationComparisonMatchesPaperShape) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  ExperimentOptions options;
  options.hyper_periods = 50;
  options.seed = 99;
  const ComparisonResult result = CompareAcsWcs(set, cpu, options);
  EXPECT_EQ(result.sub_instances, 3u);
  EXPECT_EQ(result.acs.deadline_misses, 0);
  EXPECT_EQ(result.wcs.deadline_misses, 0);
  // Stochastic workloads centred on ACEC: improvement close to the
  // deterministic 24.7%, within a generous band.
  EXPECT_GT(result.Improvement(), 0.15);
  EXPECT_LT(result.Improvement(), 0.35);
}

TEST(Pipeline, IdenticalSeedsGiveIdenticalResults) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  stats::Rng rng(3);
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 4;
  const model::TaskSet set = workload::GenerateRandomTaskSet(gen, cpu, rng);
  ExperimentOptions options;
  options.hyper_periods = 20;
  options.seed = 5;
  const ComparisonResult a = CompareAcsWcs(set, cpu, options);
  const ComparisonResult b = CompareAcsWcs(set, cpu, options);
  EXPECT_DOUBLE_EQ(a.acs.measured_energy, b.acs.measured_energy);
  EXPECT_DOUBLE_EQ(a.wcs.measured_energy, b.wcs.measured_energy);
}

TEST(Pipeline, PredictedEnergyApproximatesMeasured) {
  // The NLP objective replays the ACEC scenario; measured energy under the
  // truncated normal should land within ~25% of it (Jensen gap + clamps).
  const model::LinearDvsModel cpu = workload::DefaultModel();
  stats::Rng rng(17);
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 5;
  gen.bcec_wcec_ratio = 0.5;
  const model::TaskSet set = workload::GenerateRandomTaskSet(gen, cpu, rng);
  ExperimentOptions options;
  options.hyper_periods = 100;
  options.seed = 23;
  const ComparisonResult result = CompareAcsWcs(set, cpu, options);
  EXPECT_GT(result.acs.measured_energy, 0.7 * result.acs.predicted_energy);
  EXPECT_LT(result.acs.measured_energy, 1.4 * result.acs.predicted_energy);
}

TEST(Pipeline, SimulateWithCustomPolicyAndSampler) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const sim::StaticSchedule schedule(fps, workload::MotivationAcsEndTimes(),
                                     {20.0e6, 20.0e6, 20.0e6});
  const model::FixedWorkload sampler(set, model::FixedScenario::kAverage);
  const sim::GreedyReclaimPolicy policy(cpu);
  const sim::SimResult result =
      SimulateWith(fps, schedule, cpu, policy, sampler, 1, 2);
  EXPECT_EQ(result.deadline_misses, 0);
  // Two hyper-periods of the deterministic 1.2e8 schedule.
  EXPECT_NEAR(result.total_energy, 2.4e8, 1e3);
}

TEST(Pipeline, SigmaDivisorPropagates) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  stats::Rng rng(29);
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 3;
  gen.bcec_wcec_ratio = 0.1;
  const model::TaskSet set = workload::GenerateRandomTaskSet(gen, cpu, rng);
  ExperimentOptions narrow;
  narrow.hyper_periods = 50;
  narrow.seed = 7;
  narrow.sigma_divisor = 100.0;  // nearly deterministic at ACEC
  ExperimentOptions wide = narrow;
  wide.sigma_divisor = 3.0;
  const ComparisonResult rn = CompareAcsWcs(set, cpu, narrow);
  const ComparisonResult rw = CompareAcsWcs(set, cpu, wide);
  // Both must be deadline-clean; the energies differ because the workload
  // spread differs.
  EXPECT_EQ(rn.acs.deadline_misses, 0);
  EXPECT_EQ(rw.acs.deadline_misses, 0);
  EXPECT_NE(rn.acs.measured_energy, rw.acs.measured_energy);
}

// Regression for the zero-baseline bug: the ratio used to divide by zero
// silently.  Now the degenerate cases are explicit — NaN for non-finite
// inputs, signed infinity for a zero baseline (sign says which side won) —
// so sinks can detect and skip them instead of emitting "inf"/"nan".
TEST(Pipeline, ImprovementRatioHandlesDegenerateBaselines) {
  EXPECT_DOUBLE_EQ(ImprovementRatio(10.0, 7.5), 0.25);
  EXPECT_DOUBLE_EQ(ImprovementRatio(10.0, 12.5), -0.25);
  // Zero baseline, zero method: a tie, reported as no improvement.
  EXPECT_DOUBLE_EQ(ImprovementRatio(0.0, 0.0), 0.0);
  // Zero baseline, positive method: infinitely worse than the baseline.
  EXPECT_TRUE(std::isinf(ImprovementRatio(0.0, 1.0)));
  EXPECT_LT(ImprovementRatio(0.0, 1.0), 0.0);
  EXPECT_GT(ImprovementRatio(0.0, -1.0), 0.0);
  // Non-finite inputs propagate as NaN, never as a plausible-looking ratio.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(std::isnan(ImprovementRatio(nan, 1.0)));
  EXPECT_TRUE(std::isnan(ImprovementRatio(1.0, inf)));
}

}  // namespace
}  // namespace dvs::core
