#include "util/csv.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace dvs::util {
namespace {

TEST(CsvEscape, PlainFieldsPassThrough) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
  EXPECT_EQ(CsvEscape("12.5"), "12.5");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTable, HeaderOnly) {
  const CsvTable table({"a", "b"});
  EXPECT_EQ(table.ToString(), "a,b\n");
  EXPECT_EQ(table.row_count(), 0u);
  EXPECT_EQ(table.column_count(), 2u);
}

TEST(CsvTable, TypedCells) {
  CsvTable table({"name", "count", "ratio"});
  table.NewRow().Add("x").Add(std::int64_t{42}).Add(0.5, 2);
  EXPECT_EQ(table.ToString(), "name,count,ratio\nx,42,0.50\n");
}

TEST(CsvTable, MultipleRows) {
  CsvTable table({"k", "v"});
  table.NewRow().Add("a").Add(1);
  table.NewRow().Add("b").Add(2);
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.ToString(), "k,v\na,1\nb,2\n");
}

TEST(CsvTable, RejectsTooManyCells) {
  CsvTable table({"only"});
  table.NewRow().Add("one");
  EXPECT_THROW(table.Add("two"), InvalidArgumentError);
}

TEST(CsvTable, RejectsAddWithoutRow) {
  CsvTable table({"only"});
  EXPECT_THROW(table.Add("x"), InvalidArgumentError);
}

TEST(CsvTable, DetectsShortRowOnRender) {
  CsvTable table({"a", "b"});
  table.NewRow().Add("just-one");
  EXPECT_THROW(table.ToString(), InternalError);
}

TEST(CsvTable, RejectsEmptyHeader) {
  EXPECT_THROW(CsvTable({}), InvalidArgumentError);
}

}  // namespace
}  // namespace dvs::util
