#include "model/power_model.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/error.h"

namespace dvs::model {
namespace {

TEST(LinearDvsModel, SpeedProportionalToVoltage) {
  const LinearDvsModel cpu(0.5, 4.0, 1.0, 100.0);
  EXPECT_DOUBLE_EQ(cpu.SpeedAt(1.0), 100.0);
  EXPECT_DOUBLE_EQ(cpu.SpeedAt(4.0), 400.0);
  EXPECT_DOUBLE_EQ(cpu.MaxSpeed(), 400.0);
  EXPECT_DOUBLE_EQ(cpu.MinSpeed(), 50.0);
}

TEST(LinearDvsModel, VoltageForSpeedIsInverse) {
  const LinearDvsModel cpu(0.5, 4.0, 1.0, 100.0);
  for (double v : {0.5, 1.0, 2.7, 4.0}) {
    EXPECT_NEAR(cpu.VoltageForSpeed(cpu.SpeedAt(v)), v, 1e-12);
  }
}

TEST(LinearDvsModel, SlopesAreConsistentInverses) {
  const LinearDvsModel cpu(0.5, 4.0, 1.0, 100.0);
  EXPECT_DOUBLE_EQ(cpu.VoltageSlope(123.0) * cpu.SpeedSlope(1.0), 1.0);
}

TEST(LinearDvsModel, EnergyQuadraticInVoltage) {
  const LinearDvsModel cpu(0.5, 4.0, 2.0, 100.0);
  EXPECT_DOUBLE_EQ(cpu.EnergyPerCycle(2.0), 8.0);  // ceff * V^2
  EXPECT_DOUBLE_EQ(cpu.Energy(2.0, 10.0), 80.0);
}

TEST(LinearDvsModel, RejectsBadParameters) {
  EXPECT_THROW(LinearDvsModel(0.0, 4.0, 1.0, 1.0), util::InvalidArgumentError);
  EXPECT_THROW(LinearDvsModel(4.0, 4.0, 1.0, 1.0), util::InvalidArgumentError);
  EXPECT_THROW(LinearDvsModel(0.5, 4.0, 0.0, 1.0), util::InvalidArgumentError);
  EXPECT_THROW(LinearDvsModel(0.5, 4.0, 1.0, 0.0), util::InvalidArgumentError);
}

TEST(DvsModel, ClampVoltage) {
  const LinearDvsModel cpu(0.5, 4.0, 1.0, 100.0);
  EXPECT_DOUBLE_EQ(cpu.ClampVoltage(0.1), 0.5);
  EXPECT_DOUBLE_EQ(cpu.ClampVoltage(5.0), 4.0);
  EXPECT_DOUBLE_EQ(cpu.ClampVoltage(2.0), 2.0);
}

TEST(DvsModel, VoltageForWork) {
  const LinearDvsModel cpu(0.5, 4.0, 1.0, 100.0);
  // 200 cycles in 1 ms -> 200 cycles/ms -> 2 V.
  EXPECT_NEAR(cpu.VoltageForWork(200.0, 1.0), 2.0, 1e-12);
  // Too fast -> clamp at vmax.
  EXPECT_DOUBLE_EQ(cpu.VoltageForWork(1e9, 1.0), 4.0);
  // Very slow -> clamp at vmin.
  EXPECT_DOUBLE_EQ(cpu.VoltageForWork(1.0, 1e9), 0.5);
  // Degenerate window -> vmax; zero work -> vmin.
  EXPECT_DOUBLE_EQ(cpu.VoltageForWork(10.0, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(cpu.VoltageForWork(0.0, 1.0), 0.5);
  EXPECT_THROW(cpu.VoltageForWork(-1.0, 1.0), util::InvalidArgumentError);
}

TEST(AlphaDvsModel, MonotoneSpeed) {
  const AlphaDvsModel cpu(0.8, 3.3, 1.0, 0.01, 0.5, 1.5);
  double prev = 0.0;
  for (double v = 0.8; v <= 3.3; v += 0.1) {
    const double s = cpu.SpeedAt(v);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(AlphaDvsModel, VoltageForSpeedInvertsExactly) {
  const AlphaDvsModel cpu(0.8, 3.3, 1.0, 0.01, 0.5, 1.7);
  for (double v : {0.8, 1.0, 1.9, 2.5, 3.3}) {
    EXPECT_NEAR(cpu.VoltageForSpeed(cpu.SpeedAt(v)), v, 1e-8);
  }
}

TEST(AlphaDvsModel, SlopeMatchesFiniteDifference) {
  const AlphaDvsModel cpu(0.8, 3.3, 1.0, 0.01, 0.5, 1.6);
  const double v = 2.0;
  const double h = 1e-6;
  const double fd = (cpu.SpeedAt(v + h) - cpu.SpeedAt(v - h)) / (2.0 * h);
  EXPECT_NEAR(cpu.SpeedSlope(v), fd, 1e-4 * std::abs(fd));
  // VoltageSlope is the reciprocal at the matching point.
  const double s = cpu.SpeedAt(v);
  EXPECT_NEAR(cpu.VoltageSlope(s), 1.0 / fd, 1e-4 / std::abs(fd));
}

TEST(AlphaDvsModel, RejectsBadParameters) {
  EXPECT_THROW(AlphaDvsModel(0.4, 3.3, 1.0, 0.01, 0.5, 1.5),
               util::InvalidArgumentError);  // vmin <= vth
  EXPECT_THROW(AlphaDvsModel(0.8, 3.3, 1.0, 0.01, 0.5, 2.5),
               util::InvalidArgumentError);  // alpha > 2
  EXPECT_THROW(AlphaDvsModel(0.8, 3.3, 1.0, -1.0, 0.5, 1.5),
               util::InvalidArgumentError);  // negative delay constant
}

TEST(DiscreteDvsModel, QuantisesUp) {
  auto base = std::make_shared<LinearDvsModel>(0.5, 4.0, 1.0, 100.0);
  const DiscreteDvsModel cpu(base, {1.0, 2.0, 3.0, 4.0});
  // 150 cycles/ms needs 1.5 V -> next level up is 2 V.
  EXPECT_DOUBLE_EQ(cpu.VoltageForSpeed(150.0), 2.0);
  // Exactly at a level stays there.
  EXPECT_DOUBLE_EQ(cpu.VoltageForSpeed(200.0), 2.0);
  // Beyond the top level saturates.
  EXPECT_DOUBLE_EQ(cpu.VoltageForSpeed(1000.0), 4.0);
  EXPECT_DOUBLE_EQ(cpu.vmin(), 1.0);
  EXPECT_DOUBLE_EQ(cpu.vmax(), 4.0);
}

TEST(DiscreteDvsModel, EvenLevelsSpanRange) {
  const LinearDvsModel base(0.5, 4.0, 1.0, 100.0);
  const auto levels = DiscreteDvsModel::EvenLevels(base, 8);
  ASSERT_EQ(levels.size(), 8u);
  EXPECT_DOUBLE_EQ(levels.front(), 0.5);
  EXPECT_DOUBLE_EQ(levels.back(), 4.0);
  const auto one = DiscreteDvsModel::EvenLevels(base, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one.front(), 4.0);
}

TEST(DiscreteDvsModel, RejectsLevelsOutsideBase) {
  auto base = std::make_shared<LinearDvsModel>(1.0, 3.0, 1.0, 100.0);
  EXPECT_THROW(DiscreteDvsModel(base, {0.5}), util::InvalidArgumentError);
  EXPECT_THROW(DiscreteDvsModel(base, {}), util::InvalidArgumentError);
}

TEST(TransitionOverhead, ZeroDetection) {
  TransitionOverhead none;
  EXPECT_TRUE(none.IsZero());
  TransitionOverhead some{0.1, 0.0};
  EXPECT_FALSE(some.IsZero());
}

}  // namespace
}  // namespace dvs::model
