// Regression harness for the planning-arm cache hazard.
//
// PR 3's PreparedCell cache shares one SolveCache across every cell that
// draws the same task set (same SetIndex), which was sound while every
// cached solve was scenario-invariant.  The scenario-conditioned arms break
// that premise: their ACS solve is a function of the calibrated
// PlanningPoint, which varies with the cell's scenario, planning arm and
// knobs.  The cache therefore keys planned solves by the *exact point
// values* (SolveCache::planned) — and this suite pins the guarantee down:
//
//   - evaluating every planning arm under every registered scenario
//     through ONE shared workspace/SolveCache (the RunGrid sharing
//     pattern) is bit-identical to evaluating each combination in a fresh,
//     cache-free context — a wrong cross-reuse would surface as a bit
//     diff;
//   - the shared cache ends up with exactly one planned entry per
//     (scenario, arm) combination — no cross-reuse, no duplicate solves;
//   - the sanity direction of the acceptance criterion: a PlanningPoint
//     pinned to the ACEC values solves bit-identically to the plain ACS
//     arm (identical planning point => byte-identical schedule).
#include <gtest/gtest.h>

#include <iterator>
#include <string>
#include <vector>

#include "core/eval_workspace.h"
#include "core/method_registry.h"
#include "core/pipeline.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/power_model.h"
#include "model/task.h"
#include "stats/rng.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"
#include "workload/scenario.h"

namespace dvs {
namespace {

constexpr const char* kPlanningArms[] = {"acs-scenario", "acs-quantile",
                                         "acs-mixture"};

model::TaskSet PlanningSet(const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 4;
  gen.bcec_wcec_ratio = 0.3;
  gen.max_sub_instances = 60;
  stats::Rng rng(4242);
  return workload::GenerateRandomTaskSet(gen, dvs, rng);
}

core::ExperimentOptions PlanningOptionsFor(
    const model::WorkloadScenario& scenario) {
  core::ExperimentOptions options;
  options.hyper_periods = 10;
  options.seed = 99;
  options.scenario = &scenario;
  // Test-sized calibration: enough draws for a stable point, cheap enough
  // to run 6 scenarios x 3 arms twice.
  options.planning.calibration_samples = 256;
  options.planning.mixture_samples = 4;
  return options;
}

/// Exact equality of every MethodOutcome field (measured energy compared
/// bitwise — the point of the suite is detecting solve cross-reuse, which
/// would show up as an FP diff, not an epsilon).
void ExpectSameOutcome(const core::MethodOutcome& a,
                       const core::MethodOutcome& b,
                       const std::string& label) {
  EXPECT_EQ(a.measured_energy, b.measured_energy) << label;
  EXPECT_EQ(a.predicted_energy, b.predicted_energy) << label;
  EXPECT_EQ(a.deadline_misses, b.deadline_misses) << label;
  EXPECT_EQ(a.voltage_switches, b.voltage_switches) << label;
  EXPECT_EQ(a.used_fallback, b.used_fallback) << label;
}

TEST(PlanningCache, SharedCacheBitMatchesFreshPerScenarioAndArm) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = PlanningSet(cpu);
  const core::MethodRegistry& methods = core::MethodRegistry::Builtin();
  const workload::ScenarioRegistry& scenarios =
      workload::ScenarioRegistry::Builtin();
  const core::SchedulerOptions scheduler;

  // Phase 1: every (scenario, arm) through ONE workspace under ONE cache
  // key — exactly how sibling grid cells sharing a SetIndex share a
  // PreparedCell.  `options` lives only for its loop iteration; that is
  // safe because every evaluation goes through EvaluateMethod, which
  // re-attaches the current options before planning — do not add direct
  // Plan() calls after the loop without attaching live options first.
  core::EvalWorkspace workspace;
  constexpr std::uint64_t kSetKey = 17;
  std::vector<core::MethodOutcome> shared;
  std::vector<std::string> labels;
  for (const std::string& scenario_name : scenarios.Names()) {
    const core::ExperimentOptions options =
        PlanningOptionsFor(scenarios.Get(scenario_name));
    core::EvalWorkspace::PreparedCell& prep =
        workspace.Prepare(kSetKey, set, cpu, scheduler);
    core::MethodContext context(prep.fps, cpu, scheduler, workspace,
                                prep.solves);
    for (const char* arm : kPlanningArms) {
      shared.push_back(EvaluateMethod(methods.Get(arm), context, options));
      labels.push_back(scenario_name + " / " + arm);
    }
  }

  // The shared SolveCache must hold exactly one planned solve per
  // (scenario, arm): fewer would mean a cross-combination reuse, more a
  // broken hit condition.
  {
    core::EvalWorkspace::PreparedCell& prep =
        workspace.Prepare(kSetKey, set, cpu, scheduler);
    EXPECT_EQ(prep.solves.planned.size(),
              scenarios.Names().size() * std::size(kPlanningArms));
  }

  // Phase 2: the same combinations, each in a fresh cache-free context.
  std::size_t i = 0;
  for (const std::string& scenario_name : scenarios.Names()) {
    const core::ExperimentOptions options =
        PlanningOptionsFor(scenarios.Get(scenario_name));
    const fps::FullyPreemptiveSchedule fps(set);
    core::MethodContext fresh(fps, cpu, scheduler);
    for (const char* arm : kPlanningArms) {
      const core::MethodOutcome outcome =
          EvaluateMethod(methods.Get(arm), fresh, options);
      ExpectSameOutcome(shared[i], outcome, labels[i]);
      ++i;
    }
  }
}

TEST(PlanningCache, DistinctScenariosProduceDistinctPlannedSolves) {
  // Teeth check for the suite: the planned solves really differ across
  // scenarios (if calibration collapsed to one point, the bit-compare
  // above could never catch a cross-reuse).
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = PlanningSet(cpu);
  const core::MethodRegistry& methods = core::MethodRegistry::Builtin();
  const workload::ScenarioRegistry& scenarios =
      workload::ScenarioRegistry::Builtin();
  const core::SchedulerOptions scheduler;
  const fps::FullyPreemptiveSchedule fps(set);

  core::MethodContext context(fps, cpu, scheduler);
  const core::ExperimentOptions iid =
      PlanningOptionsFor(scenarios.Get("iid-normal"));
  const core::ExperimentOptions heavy =
      PlanningOptionsFor(scenarios.Get("heavy-tail"));
  const core::MethodOutcome a =
      EvaluateMethod(methods.Get("acs-scenario"), context, iid);
  const core::MethodOutcome b =
      EvaluateMethod(methods.Get("acs-scenario"), context, heavy);
  EXPECT_NE(a.predicted_energy, b.predicted_energy);
}

TEST(PlanningCache, AcecPlanningPointBitMatchesPlainAcs) {
  // Identical planning point => byte-identical solve: pin the point to the
  // task ACECs and the planned pipeline must reproduce SolveAcs exactly
  // (same warm start, same objective values, same solver trajectory).
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = PlanningSet(cpu);
  const core::SchedulerOptions scheduler;
  const fps::FullyPreemptiveSchedule fps(set);

  core::PlanningPoint point;
  for (model::TaskIndex i = 0; i < set.size(); ++i) {
    point.cycles.push_back(set.task(i).acec);
  }

  core::MethodContext context(fps, cpu, scheduler);
  const core::ScheduleResult& acs = context.Acs();
  const core::ScheduleResult& planned = context.Planned(point);

  EXPECT_EQ(planned.predicted_energy, acs.predicted_energy);
  EXPECT_EQ(planned.used_fallback, acs.used_fallback);
  ASSERT_EQ(planned.schedule.size(), acs.schedule.size());
  for (std::size_t u = 0; u < acs.schedule.size(); ++u) {
    EXPECT_EQ(planned.schedule.end_time(u), acs.schedule.end_time(u)) << u;
    EXPECT_EQ(planned.schedule.worst_budget(u), acs.schedule.worst_budget(u))
        << u;
  }
}

}  // namespace
}  // namespace dvs
