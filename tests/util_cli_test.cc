#include "util/cli.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace dvs::util {
namespace {

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args);
  return argv;
}

TEST(ArgParser, ParsesAllTypes) {
  bool flag = false;
  std::int64_t count = 1;
  double ratio = 0.0;
  std::string name = "default";
  ArgParser parser("prog", "test");
  parser.AddFlag("flag", &flag, "a flag");
  parser.AddInt("count", &count, "a count");
  parser.AddDouble("ratio", &ratio, "a ratio");
  parser.AddString("name", &name, "a name");

  const auto argv =
      Argv({"--flag", "--count", "7", "--ratio=0.25", "--name", "x"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(flag);
  EXPECT_EQ(count, 7);
  EXPECT_DOUBLE_EQ(ratio, 0.25);
  EXPECT_EQ(name, "x");
}

TEST(ArgParser, DefaultsSurviveWhenAbsent) {
  std::int64_t count = 99;
  ArgParser parser("prog", "test");
  parser.AddInt("count", &count, "a count");
  const auto argv = Argv({});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(count, 99);
}

TEST(ArgParser, EqualsFormForEveryType) {
  bool flag = true;
  std::int64_t count = 0;
  ArgParser parser("prog", "test");
  parser.AddFlag("flag", &flag, "f");
  parser.AddInt("count", &count, "c");
  const auto argv = Argv({"--flag=false", "--count=-3"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(flag);
  EXPECT_EQ(count, -3);
}

TEST(ArgParser, RejectsUnknownOption) {
  ArgParser parser("prog", "test");
  const auto argv = Argv({"--nope"});
  EXPECT_THROW(parser.Parse(static_cast<int>(argv.size()), argv.data()),
               InvalidArgumentError);
}

TEST(ArgParser, RejectsMalformedNumbers) {
  std::int64_t count = 0;
  double ratio = 0.0;
  ArgParser parser("prog", "test");
  parser.AddInt("count", &count, "c");
  parser.AddDouble("ratio", &ratio, "r");
  auto argv = Argv({"--count", "seven"});
  EXPECT_THROW(parser.Parse(static_cast<int>(argv.size()), argv.data()),
               InvalidArgumentError);
  argv = Argv({"--ratio", "0.5x"});
  EXPECT_THROW(parser.Parse(static_cast<int>(argv.size()), argv.data()),
               InvalidArgumentError);
}

TEST(ArgParser, RejectsMissingValue) {
  std::int64_t count = 0;
  ArgParser parser("prog", "test");
  parser.AddInt("count", &count, "c");
  const auto argv = Argv({"--count"});
  EXPECT_THROW(parser.Parse(static_cast<int>(argv.size()), argv.data()),
               InvalidArgumentError);
}

TEST(ArgParser, RejectsPositionalArguments) {
  ArgParser parser("prog", "test");
  const auto argv = Argv({"stray"});
  EXPECT_THROW(parser.Parse(static_cast<int>(argv.size()), argv.data()),
               InvalidArgumentError);
}

TEST(ArgParser, RejectsDuplicateRegistration) {
  std::int64_t a = 0;
  ArgParser parser("prog", "test");
  parser.AddInt("x", &a, "first");
  EXPECT_THROW(parser.AddInt("x", &a, "second"), InvalidArgumentError);
}

TEST(ArgParser, HelpReturnsFalse) {
  ArgParser parser("prog", "test");
  const auto argv = Argv({"--help"});
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(ArgParser, UsageMentionsOptionsAndDefaults) {
  std::int64_t count = 42;
  ArgParser parser("prog", "does things");
  parser.AddInt("count", &count, "how many");
  const std::string usage = parser.Usage();
  EXPECT_NE(usage.find("count"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
  EXPECT_NE(usage.find("42"), std::string::npos);
}

TEST(ArgParser, BooleanSpellings) {
  // Boolean flags never consume the next token (that would make bare
  // `--flag` ambiguous); explicit values use the `=` form.
  bool flag = false;
  ArgParser parser("prog", "test");
  parser.AddFlag("flag", &flag, "f");
  for (const std::string value : {"true", "1", "yes"}) {
    flag = false;
    const std::string arg = "--flag=" + value;
    const auto argv = Argv({arg.c_str()});
    ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_TRUE(flag) << value;
  }
  for (const std::string value : {"false", "0", "no"}) {
    flag = true;
    const std::string arg = "--flag=" + value;
    const auto argv = Argv({arg.c_str()});
    ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_FALSE(flag) << value;
  }
  const auto bad = Argv({"--flag=maybe"});
  EXPECT_THROW(parser.Parse(static_cast<int>(bad.size()), bad.data()),
               InvalidArgumentError);
}

}  // namespace
}  // namespace dvs::util
