#include "model/task.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace dvs::model {
namespace {

Task MakeTask(std::string name, std::int64_t period, double wcec) {
  Task t;
  t.name = std::move(name);
  t.period = period;
  t.wcec = wcec;
  t.acec = 0.75 * wcec;
  t.bcec = 0.5 * wcec;
  return t;
}

TEST(TaskSet, HyperPeriodIsLcm) {
  const TaskSet set({MakeTask("a", 10, 1.0), MakeTask("b", 25, 1.0),
                     MakeTask("c", 40, 1.0)});
  EXPECT_EQ(set.hyper_period(), 200);
  EXPECT_EQ(set.InstanceCount(0), 20);
  EXPECT_EQ(set.InstanceCount(1), 8);
  EXPECT_EQ(set.InstanceCount(2), 5);
  EXPECT_EQ(set.TotalInstances(), 33);
}

TEST(TaskSet, ValidatesTaskInvariants) {
  Task bad = MakeTask("x", 10, 5.0);
  bad.acec = 6.0;  // ACEC > WCEC
  EXPECT_THROW(TaskSet({bad}), util::InvalidArgumentError);
  bad = MakeTask("x", 0, 5.0);
  EXPECT_THROW(TaskSet({bad}), util::InvalidArgumentError);
  bad = MakeTask("x", 10, 0.0);
  EXPECT_THROW(TaskSet({bad}), util::InvalidArgumentError);
  bad = MakeTask("x", 10, 5.0);
  bad.bcec = -1.0;
  EXPECT_THROW(TaskSet({bad}), util::InvalidArgumentError);
  EXPECT_THROW(TaskSet({}), util::InvalidArgumentError);
}

TEST(TaskSet, RateMonotonicDispatchRank) {
  const TaskSet set({MakeTask("slow", 100, 1.0), MakeTask("fast", 10, 1.0),
                     MakeTask("fast2", 10, 1.0)});
  EXPECT_TRUE(set.OutranksForDispatch(1, 0));   // shorter period
  EXPECT_FALSE(set.OutranksForDispatch(0, 1));
  EXPECT_TRUE(set.OutranksForDispatch(1, 2));   // tie -> lower index
  EXPECT_FALSE(set.OutranksForDispatch(2, 1));
}

TEST(TaskSet, EqualPeriodsShareAPriority) {
  const TaskSet set({MakeTask("a", 10, 1.0), MakeTask("b", 10, 1.0),
                     MakeTask("c", 20, 1.0)});
  EXPECT_FALSE(set.CanPreempt(0, 1));  // same period: no preemption
  EXPECT_FALSE(set.CanPreempt(1, 0));
  EXPECT_TRUE(set.CanPreempt(0, 2));   // strictly shorter period preempts
  EXPECT_FALSE(set.CanPreempt(2, 0));
}

TEST(TaskSet, UtilizationAtVmax) {
  const LinearDvsModel cpu(0.5, 4.0, 1.0, 1.0);  // max speed 4 cycles/unit
  // WCEC 20 over period 10 at speed 4 -> U = 0.5.
  const TaskSet set({MakeTask("a", 10, 20.0)});
  EXPECT_NEAR(set.Utilization(cpu), 0.5, 1e-12);
  EXPECT_NEAR(set.AverageUtilization(cpu), 0.375, 1e-12);  // acec = 15
}

TEST(TaskSet, ScaledByPreservesRatios) {
  const TaskSet set({MakeTask("a", 10, 20.0)});
  const TaskSet scaled = set.ScaledBy(0.5);
  EXPECT_DOUBLE_EQ(scaled.task(0).wcec, 10.0);
  EXPECT_DOUBLE_EQ(scaled.task(0).acec, 7.5);
  EXPECT_DOUBLE_EQ(scaled.task(0).bcec, 5.0);
  EXPECT_DOUBLE_EQ(scaled.task(0).BcecWcecRatio(),
                   set.task(0).BcecWcecRatio());
  EXPECT_THROW(set.ScaledBy(0.0), util::InvalidArgumentError);
}

TEST(TaskSet, IndexOutOfRangeThrows) {
  const TaskSet set({MakeTask("a", 10, 1.0)});
  EXPECT_THROW(set.task(1), util::InvalidArgumentError);
}

TEST(EnumerateInstances, OrderedByReleaseThenRank) {
  const TaskSet set({MakeTask("lo", 20, 1.0), MakeTask("hi", 10, 1.0)});
  const auto instances = EnumerateInstances(set);
  ASSERT_EQ(instances.size(), 3u);
  // t=0: hi first (shorter period), then lo; t=10: hi again.
  EXPECT_EQ(instances[0].task, 1u);
  EXPECT_EQ(instances[1].task, 0u);
  EXPECT_EQ(instances[2].task, 1u);
  EXPECT_DOUBLE_EQ(instances[2].release, 10.0);
  EXPECT_DOUBLE_EQ(instances[2].deadline, 20.0);
}

TEST(EnumerateInstances, WindowsTileTheHyperPeriod) {
  const TaskSet set({MakeTask("a", 5, 1.0), MakeTask("b", 15, 1.0)});
  const auto instances = EnumerateInstances(set);
  double total_window = 0.0;
  for (const TaskInstance& inst : instances) {
    EXPECT_DOUBLE_EQ(inst.deadline - inst.release,
                     static_cast<double>(set.task(inst.task).period));
    total_window += inst.deadline - inst.release;
  }
  // 3 instances of a (5 each) + 1 of b (15) = 30 over hyper-period 15.
  EXPECT_DOUBLE_EQ(total_window, 30.0);
}

}  // namespace
}  // namespace dvs::model
