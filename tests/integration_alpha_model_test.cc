// End-to-end coverage of the alpha-power-law processor model: the whole
// pipeline (expansion -> WCS/ACS solve -> greedy runtime) must work and
// keep its guarantees on the realistic delay model, not just the linear
// one the paper's example uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/pipeline.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/workload.h"
#include "opt/finite_diff.h"
#include "sim/engine.h"
#include "sim/policy.h"
#include "workload/random_taskset.h"

namespace dvs {
namespace {

model::AlphaDvsModel AlphaCpu() {
  // 0.8-3.3 V, Vth 0.5, alpha 1.6 — a 1990s-style DVS core.
  return model::AlphaDvsModel(0.8, 3.3, 1.0, 0.25, 0.5, 1.6);
}

model::TaskSet AlphaSet(std::uint64_t seed, double ratio) {
  const model::AlphaDvsModel cpu = AlphaCpu();
  stats::Rng rng(seed);
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 4;
  gen.bcec_wcec_ratio = ratio;
  return workload::GenerateRandomTaskSet(gen, cpu, rng);
}

TEST(AlphaModelPipeline, SchedulesAreFeasible) {
  const model::AlphaDvsModel cpu = AlphaCpu();
  const model::TaskSet set = AlphaSet(5, 0.3);
  const fps::FullyPreemptiveSchedule fps(set);
  const core::ScheduleResult wcs = core::SolveWcs(fps, cpu);
  const core::ScheduleResult acs = core::SolveSchedule(
      fps, cpu, core::Scenario::kAverage, {}, wcs.schedule);
  EXPECT_TRUE(sim::VerifyWorstCase(fps, wcs.schedule, cpu).feasible);
  EXPECT_TRUE(sim::VerifyWorstCase(fps, acs.schedule, cpu).feasible);
}

TEST(AlphaModelPipeline, NoMissesUnderWorstCase) {
  const model::AlphaDvsModel cpu = AlphaCpu();
  const model::TaskSet set = AlphaSet(7, 0.2);
  const fps::FullyPreemptiveSchedule fps(set);
  const core::ScheduleResult acs = core::SolveAcs(fps, cpu);
  const model::FixedWorkload adversary(set, model::FixedScenario::kWorst);
  const sim::GreedyReclaimPolicy policy(cpu);
  stats::Rng rng(1);
  sim::SimOptions options;
  options.hyper_periods = 3;
  const sim::SimResult result = sim::Simulate(
      fps, acs.schedule, cpu, policy, adversary, rng, options);
  EXPECT_EQ(result.deadline_misses, 0) << result.first_miss;
}

TEST(AlphaModelPipeline, AcsImprovesOnWcs) {
  const model::AlphaDvsModel cpu = AlphaCpu();
  const model::TaskSet set = AlphaSet(11, 0.1);
  core::ExperimentOptions options;
  options.hyper_periods = 40;
  options.seed = 3;
  const core::ComparisonResult result =
      core::CompareAcsWcs(set, cpu, options);
  EXPECT_EQ(result.acs.deadline_misses, 0);
  EXPECT_EQ(result.wcs.deadline_misses, 0);
  EXPECT_GT(result.Improvement(), 0.0);
}

TEST(AlphaModelPipeline, GradientStillMatchesFiniteDifference) {
  const model::AlphaDvsModel cpu = AlphaCpu();
  const model::TaskSet set = AlphaSet(13, 0.4);
  const fps::FullyPreemptiveSchedule fps(set);
  const core::EnergyObjective objective(fps, cpu, core::Scenario::kAverage);
  opt::Vector x =
      objective.PackSchedule(sim::BuildVmaxAsapSchedule(fps, cpu));
  // Interior placement as in the formulation tests.
  stats::Rng jitter(99);
  const std::vector<double>& cap = fps.effective_end_bounds();
  for (std::size_t u = 0; u < fps.sub_count(); ++u) {
    const fps::SubInstance& sub = fps.sub(u);
    x[u] = sub.seg_begin +
           jitter.Uniform(0.5, 0.85) * (cap[u] - sub.seg_begin);
  }
  objective.BuildFeasibleSet()->Project(x);
  opt::Vector analytic(x.size(), 0.0);
  objective.Gradient(x, analytic);
  const opt::Vector numeric =
      opt::FiniteDifferenceGradient(objective, x, 1e-6);
  std::size_t bad = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double rel =
        std::fabs(analytic[i] - numeric[i]) /
        std::max({std::fabs(analytic[i]), std::fabs(numeric[i]), 1.0});
    if (rel > 1e-3) {
      ++bad;
    }
  }
  EXPECT_LE(bad, 2u);  // tolerate isolated kink-straddling coordinates
}

}  // namespace
}  // namespace dvs
