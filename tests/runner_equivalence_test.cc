// Paired-draw equivalence: the SIMD vector path and the neighbor
// warm-start path are allowed to change floating-point association (and
// hence individual solver trajectories), but on paired draws — identical
// task set, scenario, seed and grid coordinates — the *results* they
// deliver must agree with the reference path to within noise.  Each test
// runs one grid twice, toggling exactly one knob (dispatch level, warm
// start), and compares the per-row measured fleet energies pairwise: the
// mean relative difference must be a fraction of a percent and no single
// cell may drift materially, on >= 8 paired task sets.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "runner/csv_sink.h"
#include "runner/experiment_grid.h"
#include "runner/run_grid.h"
#include "util/simd.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::runner {
namespace {

std::string FreshPath(const std::string& stem) {
  return ::testing::TempDir() + stem + "." +
         std::to_string(static_cast<long long>(::getpid())) + ".csv";
}

/// Runs `grid` serially into a temp CSV and returns the measured_energy
/// column, one entry per row in serial row order (the pairing key).
std::vector<double> MeasuredEnergies(const ExperimentGrid& grid,
                                     bool scenario_column,
                                     const std::string& stem) {
  const std::string path = FreshPath(stem);
  {
    CsvSink sink(path, scenario_column, /*solver_stats_columns=*/false);
    RunOptions options;
    options.threads = 1;
    options.sink = &sink;
    const GridResult result = RunGrid(grid, options);
    EXPECT_EQ(result.failed_cells, 0u);
  }
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::string line;
  EXPECT_TRUE(std::getline(in, line));
  int column = -1;
  {
    std::istringstream header(line);
    std::string name;
    for (int i = 0; std::getline(header, name, ','); ++i) {
      if (name == "measured_energy") {
        column = i;
      }
    }
  }
  EXPECT_GE(column, 0) << "no measured_energy column in " << line;
  std::vector<double> energies;
  while (std::getline(in, line)) {
    std::istringstream row(line);
    std::string field;
    for (int i = 0; std::getline(row, field, ','); ++i) {
      if (i == column) {
        energies.push_back(std::stod(field));
      }
    }
  }
  std::remove(path.c_str());
  return energies;
}

/// Paired comparison: same row order on both sides.  `max_row_worse`
/// bounds how much any single cell may REGRESS (variant > reference) and
/// `max_mean_worse` bounds the grid-level mean — the "statistical noise"
/// bar.  `max_row_better` bounds improvement per cell; pass +inf when the
/// variant is genuinely allowed to land on better optima (a warm-start
/// continuation escaping the cold solve's local point is a win, not a
/// drift — the prop invariant suite separately bounds energies below by
/// the Vmin floor, so "too good" cannot hide a broken simulation).
void ExpectPairedEquivalent(const std::vector<double>& reference,
                            const std::vector<double>& variant,
                            double max_row_worse, double max_row_better,
                            double max_mean_worse) {
  ASSERT_EQ(reference.size(), variant.size());
  ASSERT_GE(reference.size(), 8u);
  double ref_sum = 0.0;
  double var_sum = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ref_sum += reference[i];
    var_sum += variant[i];
    const double scale = std::max(std::fabs(reference[i]), 1e-12);
    EXPECT_LE(variant[i], reference[i] + max_row_worse * scale)
        << "paired row " << i << " regressed";
    EXPECT_GE(variant[i], reference[i] - max_row_better * scale)
        << "paired row " << i << " drifted implausibly low";
  }
  const double mean_scale = std::max(std::fabs(ref_sum), 1e-12);
  EXPECT_LE(var_sum, ref_sum + max_mean_worse * mean_scale)
      << "grid mean energy regressed";
}

/// Eight paired random draws, one sigma, the paper's two arms: enough
/// sets for the mean to be meaningful, small enough sub-instance counts
/// to keep the double solve cheap.
ExperimentGrid PairedGrid(const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  gen.bcec_wcec_ratio = 0.3;
  gen.max_sub_instances = 24;

  ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {RandomSource("random-2", gen, 8)};
  grid.sigma_divisors = {6.0};
  grid.methods = {"acs", "wcs"};
  grid.hyper_periods = 10;
  grid.master_seed = 7;
  return grid;
}

TEST(RunnerEquivalence, SimdLevelsAgreeWithinNoiseOnPairedSets) {
  const model::LinearDvsModel dvs = workload::DefaultModel();
  const ExperimentGrid grid = PairedGrid(dvs);

  std::vector<double> scalar;
  {
    const util::simd::ScopedLevel pin(util::simd::Level::kScalar);
    scalar = MeasuredEnergies(grid, /*scenario_column=*/false, "equiv_scalar");
  }
  std::vector<double> vector_level;
  {
    const util::simd::ScopedLevel pin(util::simd::Detect());
    vector_level =
        MeasuredEnergies(grid, /*scenario_column=*/false, "equiv_vector");
  }
  // Vector reductions only re-associate FP sums; solver end points (and
  // the schedules simulated from them) must stay within a fraction of a
  // percent per cell, in both directions.
  ExpectPairedEquivalent(scalar, vector_level, /*max_row_worse=*/0.02,
                         /*max_row_better=*/0.02, /*max_mean_worse=*/0.005);
}

TEST(RunnerEquivalence, NeighborWarmStartAgreesWithinNoiseOnPairedSets) {
  const model::LinearDvsModel dvs = workload::DefaultModel();
  // The planning arm on a 2-point sigma axis: with kNeighbor the second
  // sigma actually chains (primal + dual continuation), so this compares
  // chained against cold solves of the same cells.
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 2;
  gen.bcec_wcec_ratio = 0.3;
  gen.max_sub_instances = 24;

  ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {RandomSource("random-2", gen, 4)};
  grid.scenarios = {"iid-normal"};
  grid.sigma_divisors = {5.0, 8.0};
  grid.methods = {"acs-scenario"};
  grid.baseline = "acs-scenario";
  grid.planning.calibration_samples = 64;
  grid.hyper_periods = 10;
  grid.master_seed = 11;

  const util::simd::ScopedLevel pin(util::simd::Level::kScalar);
  grid.warm_start = core::WarmStartPolicy::kOff;
  const std::vector<double> cold =
      MeasuredEnergies(grid, /*scenario_column=*/false, "equiv_cold");
  grid.warm_start = core::WarmStartPolicy::kNeighbor;
  const std::vector<double> warm =
      MeasuredEnergies(grid, /*scenario_column=*/false, "equiv_warm");
  // 4 sets x 2 sigmas = 8 paired cells.  Warm-started links may converge
  // to BETTER optima than the cold WCS-seeded solves (the continuation
  // escapes local points — observed on these draws), so improvement is
  // unbounded; what the chain must never do is deliver materially WORSE
  // energy than the cold path, per cell or on the grid mean.
  ExpectPairedEquivalent(cold, warm, /*max_row_worse=*/0.02,
                         /*max_row_better=*/std::numeric_limits<double>::infinity(),
                         /*max_mean_worse=*/0.005);
}

}  // namespace
}  // namespace dvs::runner
