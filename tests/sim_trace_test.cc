// Tests for execution-trace auditing and rendering.
#include "sim/trace.h"

#include <gtest/gtest.h>

#include "workload/presets.h"

namespace dvs::sim {
namespace {

model::TaskSet OneTask() {
  model::Task t;
  t.name = "solo";
  t.period = 10;
  t.wcec = 8.0;
  t.acec = 4.0;
  t.bcec = 2.0;
  return model::TaskSet({t});
}

ExecutionSlice Slice(model::TaskIndex task, std::int64_t instance,
                     double begin, double end, double voltage,
                     double cycles) {
  ExecutionSlice s;
  s.task = task;
  s.instance = instance;
  s.begin = begin;
  s.end = end;
  s.voltage = voltage;
  s.cycles = cycles;
  return s;
}

TEST(AuditTrace, CleanTracePasses) {
  const model::TaskSet set = OneTask();
  const model::LinearDvsModel cpu = workload::DefaultModel();
  Trace trace;
  // 2 time units at 1 V on a k=1 model -> 2 cycles.
  trace.Add(Slice(0, 0, 0.0, 2.0, 1.0, 2.0));
  trace.Add(Slice(0, 1, 10.0, 12.0, 1.0, 2.0));
  EXPECT_EQ(AuditTrace(trace, set, cpu), "");
}

TEST(AuditTrace, DetectsOverlap) {
  const model::TaskSet set = OneTask();
  const model::LinearDvsModel cpu = workload::DefaultModel();
  Trace trace;
  trace.Add(Slice(0, 0, 0.0, 3.0, 1.0, 3.0));
  trace.Add(Slice(0, 0, 2.0, 4.0, 1.0, 2.0));  // starts before previous end
  EXPECT_NE(AuditTrace(trace, set, cpu).find("overlap"), std::string::npos);
}

TEST(AuditTrace, DetectsWindowEscape) {
  const model::TaskSet set = OneTask();
  const model::LinearDvsModel cpu = workload::DefaultModel();
  Trace trace;
  // Instance 0's window is [0, 10); running at 11 is illegal.
  trace.Add(Slice(0, 0, 9.0, 11.0, 1.0, 2.0));
  EXPECT_NE(AuditTrace(trace, set, cpu).find("window"), std::string::npos);
}

TEST(AuditTrace, DetectsVoltageOutOfRange) {
  const model::TaskSet set = OneTask();
  const model::LinearDvsModel cpu = workload::DefaultModel();
  Trace trace;
  trace.Add(Slice(0, 0, 0.0, 1.0, 5.0, 5.0));  // 5 V > vmax 4 V
  EXPECT_NE(AuditTrace(trace, set, cpu).find("voltage"), std::string::npos);
}

TEST(AuditTrace, DetectsCycleInconsistency) {
  const model::TaskSet set = OneTask();
  const model::LinearDvsModel cpu = workload::DefaultModel();
  Trace trace;
  // 2 time units at 1 V should be 2 cycles, not 7.
  trace.Add(Slice(0, 0, 0.0, 2.0, 1.0, 7.0));
  EXPECT_NE(AuditTrace(trace, set, cpu).find("cycle"), std::string::npos);
}

TEST(AuditTrace, DetectsUnknownTask) {
  const model::TaskSet set = OneTask();
  const model::LinearDvsModel cpu = workload::DefaultModel();
  Trace trace;
  trace.Add(Slice(3, 0, 0.0, 1.0, 1.0, 1.0));
  EXPECT_NE(AuditTrace(trace, set, cpu).find("unknown"), std::string::npos);
}

TEST(RenderTraceGantt, AllRowsCarryTheirBars) {
  model::Task a = OneTask().task(0);
  a.name = "first";
  model::Task b = a;
  b.name = "second";
  const model::TaskSet set({a, b});
  const model::LinearDvsModel cpu = workload::DefaultModel();
  Trace trace;
  trace.Add(Slice(0, 0, 0.0, 4.0, 1.0, 4.0));
  trace.Add(Slice(1, 0, 4.0, 8.0, 1.0, 4.0));
  const std::string out = RenderTraceGantt(trace, set, 10.0, 40);
  // Both rows render bars (regression test: AddRow reference invalidation
  // used to drop every row but the last).
  std::size_t hash_rows = 0;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = out.find('\n', begin);
    if (end == std::string::npos) break;
    const std::string line = out.substr(begin, end - begin);
    if (line.find('#') != std::string::npos) {
      ++hash_rows;
    }
    begin = end + 1;
  }
  EXPECT_EQ(hash_rows, 2u);
}

TEST(Trace, ClearResets) {
  Trace trace;
  trace.Add(Slice(0, 0, 0.0, 1.0, 1.0, 1.0));
  EXPECT_EQ(trace.size(), 1u);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
}

}  // namespace
}  // namespace dvs::sim
