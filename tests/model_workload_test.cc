#include "model/workload.h"

#include <gtest/gtest.h>

#include "stats/summary.h"
#include "util/error.h"

namespace dvs::model {
namespace {

TaskSet MakeSet() {
  Task a;
  a.name = "a";
  a.period = 10;
  a.wcec = 100.0;
  a.acec = 60.0;
  a.bcec = 20.0;
  Task fixed;
  fixed.name = "fixed";
  fixed.period = 20;
  fixed.wcec = 50.0;
  fixed.acec = 50.0;
  fixed.bcec = 50.0;  // degenerate window
  return TaskSet({a, fixed});
}

TEST(TruncatedNormalWorkload, SamplesWithinBounds) {
  const TaskSet set = MakeSet();
  const TruncatedNormalWorkload sampler(set, 6.0);
  stats::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const double x = sampler.SampleCycles(0, rng);
    EXPECT_GE(x, 20.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(TruncatedNormalWorkload, DegenerateWindowIsPointMass) {
  const TaskSet set = MakeSet();
  const TruncatedNormalWorkload sampler(set, 6.0);
  stats::Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(sampler.SampleCycles(1, rng), 50.0);
  }
  EXPECT_DOUBLE_EQ(sampler.AnalyticMean(1), 50.0);
}

TEST(TruncatedNormalWorkload, MeanTracksAcec) {
  const TaskSet set = MakeSet();
  const TruncatedNormalWorkload sampler(set, 6.0);
  stats::Rng rng(7);
  stats::OnlineStats acc;
  for (int i = 0; i < 100000; ++i) {
    acc.Add(sampler.SampleCycles(0, rng));
  }
  EXPECT_NEAR(acc.mean(), sampler.AnalyticMean(0), 0.2);
  EXPECT_NEAR(acc.mean(), 60.0, 0.5);  // ACEC-centred window
}

TEST(TruncatedNormalWorkload, SigmaDivisorControlsSpread) {
  const TaskSet set = MakeSet();
  const TruncatedNormalWorkload narrow(set, 12.0);
  const TruncatedNormalWorkload wide(set, 3.0);
  stats::Rng rng_a(3);
  stats::Rng rng_b(3);
  stats::OnlineStats sn;
  stats::OnlineStats sw;
  for (int i = 0; i < 20000; ++i) {
    sn.Add(narrow.SampleCycles(0, rng_a));
    sw.Add(wide.SampleCycles(0, rng_b));
  }
  EXPECT_LT(sn.stddev(), sw.stddev());
}

TEST(TruncatedNormalWorkload, RejectsBadDivisor) {
  EXPECT_THROW(TruncatedNormalWorkload(MakeSet(), 0.0),
               util::InvalidArgumentError);
}

TEST(FixedWorkload, Scenarios) {
  const TaskSet set = MakeSet();
  stats::Rng rng(1);
  const FixedWorkload best(set, FixedScenario::kBest);
  const FixedWorkload avg(set, FixedScenario::kAverage);
  const FixedWorkload worst(set, FixedScenario::kWorst);
  EXPECT_DOUBLE_EQ(best.SampleCycles(0, rng), 20.0);
  EXPECT_DOUBLE_EQ(avg.SampleCycles(0, rng), 60.0);
  EXPECT_DOUBLE_EQ(worst.SampleCycles(0, rng), 100.0);
}

TEST(UniformWorkload, CoversWindow) {
  const TaskSet set = MakeSet();
  const UniformWorkload sampler(set);
  stats::Rng rng(9);
  double lo = 1e18;
  double hi = -1e18;
  for (int i = 0; i < 20000; ++i) {
    const double x = sampler.SampleCycles(0, rng);
    EXPECT_GE(x, 20.0);
    EXPECT_LE(x, 100.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_LT(lo, 25.0);  // reaches near both edges
  EXPECT_GT(hi, 95.0);
  EXPECT_DOUBLE_EQ(sampler.SampleCycles(1, rng), 50.0);  // degenerate
}

TEST(WorkloadSamplers, IndexOutOfRangeThrows) {
  const TaskSet set = MakeSet();
  const TruncatedNormalWorkload sampler(set, 6.0);
  stats::Rng rng(1);
  EXPECT_THROW(sampler.SampleCycles(2, rng), util::InvalidArgumentError);
}

}  // namespace
}  // namespace dvs::model
