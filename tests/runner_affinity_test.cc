// Cache-affinity cell scheduling contract (runner/family.h +
// ThreadPool::ParallelForFamilies).
//
// BuildFamilySchedule: one family per SetIndex, contiguous ascending cell
// coverage, deterministic LPT assignment with exact tie-breaks.  The pool:
// every cell of every family runs exactly once even when the assignment is
// maximally lopsided (all families on worker 0 — the forced-steal case).
// RunGrid: kFamilyAffinity results are bit-identical across 1 vs 4 threads
// and identical to kCursor — the scheduling policy can move work between
// workers but never a bit in the results.
#include "runner/family.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "model/power_model.h"
#include "runner/experiment_grid.h"
#include "runner/run_grid.h"
#include "runner/thread_pool.h"
#include "util/error.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::runner {
namespace {

std::uint64_t Bits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// A grid with several distinct-cost families: two random sources of
/// different task counts plus sigma/seed/scenario inner axes.
ExperimentGrid AffinityGrid(const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions small;
  small.num_tasks = 2;
  small.bcec_wcec_ratio = 0.3;
  small.max_sub_instances = 24;
  workload::RandomTaskSetOptions large = small;
  large.num_tasks = 4;

  ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = {RandomSource("small", small, 2),
                  RandomSource("large", large, 2)};
  grid.sigma_divisors = {6.0, 10.0};
  grid.workload_seeds = {0, 1};
  grid.methods = {"acs", "wcs"};
  grid.hyper_periods = 8;
  grid.master_seed = 21;
  return grid;
}

TEST(FamilySchedule, OneContiguousFamilyPerSetIndexInWindow) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = AffinityGrid(cpu);
  const std::size_t sets = grid.SetCount();
  ASSERT_EQ(sets, 4u);

  const FamilySchedule schedule = BuildFamilySchedule(grid, 0, sets, 3);
  ASSERT_EQ(schedule.families.size(), sets);
  ASSERT_EQ(schedule.owner.size(), sets);
  EXPECT_EQ(schedule.TotalCells(), grid.CellCount());

  std::size_t next_cell = 0;
  for (std::size_t i = 0; i < schedule.families.size(); ++i) {
    const CellFamily& family = schedule.families[i];
    EXPECT_EQ(family.id, i);
    EXPECT_EQ(family.begin, next_cell);
    EXPECT_GT(family.end, family.begin);
    EXPECT_GT(family.cost, 0.0);
    EXPECT_LT(schedule.owner[i], 3u);
    // Every cell of the family shares its SetIndex.
    for (std::size_t cell = family.begin; cell < family.end; ++cell) {
      EXPECT_EQ(grid.SetIndex(grid.Coord(cell)), family.set_index);
    }
    next_cell = family.end;
  }
  EXPECT_EQ(next_cell, grid.CellCount());

  // Larger task sets model as costlier families.
  double small_cost = 0.0;
  double large_cost = 0.0;
  for (const CellFamily& family : schedule.families) {
    const CellCoord coord = grid.Coord(family.begin);
    (coord.source == 0 ? small_cost : large_cost) += family.cost;
  }
  EXPECT_GT(large_cost, small_cost);

  // The assignment is a pure function of (grid, window, workers, weights).
  const FamilySchedule again = BuildFamilySchedule(grid, 0, sets, 3);
  EXPECT_EQ(again.owner, schedule.owner);
  EXPECT_EQ(again.worker_cost, schedule.worker_cost);

  // Shard windows restrict the family set without renumbering cells.
  const FamilySchedule shard = BuildFamilySchedule(grid, 1, 3, 2);
  ASSERT_EQ(shard.families.size(), 2u);
  EXPECT_EQ(shard.families[0].set_index, 1u);
  EXPECT_EQ(shard.families[1].set_index, 2u);
  EXPECT_EQ(shard.families[0].begin, schedule.families[1].begin);
}

TEST(FamilySchedule, LptBalancesAndAccountsEveryFamily) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = AffinityGrid(cpu);
  const std::size_t workers = 2;
  const FamilySchedule schedule =
      BuildFamilySchedule(grid, 0, grid.SetCount(), workers);

  ASSERT_EQ(schedule.worker_cost.size(), workers);
  std::vector<double> recomputed(workers, 0.0);
  std::size_t assigned_cells = 0;
  for (std::size_t i = 0; i < schedule.families.size(); ++i) {
    recomputed[schedule.owner[i]] += schedule.families[i].cost;
    assigned_cells += schedule.families[i].CellCount();
  }
  for (std::size_t w = 0; w < workers; ++w) {
    EXPECT_DOUBLE_EQ(recomputed[w], schedule.worker_cost[w]);
    EXPECT_EQ(schedule.WorkerCells(w),
              [&] {
                std::size_t cells = 0;
                for (std::size_t i = 0; i < schedule.families.size(); ++i) {
                  if (schedule.owner[i] == w) {
                    cells += schedule.families[i].CellCount();
                  }
                }
                return cells;
              }());
  }
  EXPECT_EQ(assigned_cells, grid.CellCount());

  // LPT keeps the heaviest worker under the total — no worker hoards
  // everything when several are available.
  const double total =
      std::accumulate(schedule.worker_cost.begin(), schedule.worker_cost.end(),
                      0.0);
  for (double load : schedule.worker_cost) {
    EXPECT_LT(load, total);
  }
}

TEST(ThreadPoolFamilies, LopsidedOwnershipIsRescuedByStealing) {
  constexpr std::size_t kFamilies = 32;
  constexpr std::size_t kCellsPerFamily = 2;
  std::vector<std::pair<std::size_t, std::size_t>> families;
  for (std::size_t f = 0; f < kFamilies; ++f) {
    families.emplace_back(f * kCellsPerFamily, (f + 1) * kCellsPerFamily);
  }
  // Every family on worker 0: workers 1..3 can only contribute by
  // stealing.
  const std::vector<std::size_t> owner(kFamilies, 0);

  ThreadPool pool(4);
  std::vector<std::atomic<int>> runs(kFamilies * kCellsPerFamily);
  const FamilyStats stats = pool.ParallelForFamilies(
      families, owner, [&](std::size_t /*worker*/, std::size_t cell) {
        runs[cell].fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      });

  for (std::size_t cell = 0; cell < runs.size(); ++cell) {
    EXPECT_EQ(runs[cell].load(), 1) << "cell " << cell;
  }
  // With 32 x 1ms families on one owner and three idle thieves, stealing
  // must fire.
  EXPECT_GT(stats.steals, 0u);
  ASSERT_EQ(stats.cells_per_worker.size(), 4u);
  EXPECT_EQ(std::accumulate(stats.cells_per_worker.begin(),
                            stats.cells_per_worker.end(), std::size_t{0}),
            kFamilies * kCellsPerFamily);
}

TEST(ThreadPoolFamilies, ErrorsPropagateFromStolenFamilies) {
  std::vector<std::pair<std::size_t, std::size_t>> families = {{0, 1},
                                                               {1, 2}};
  const std::vector<std::size_t> owner = {0, 0};
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelForFamilies(
                   families, owner,
                   [&](std::size_t, std::size_t cell) {
                     if (cell == 1) {
                       throw util::Error("boom");
                     }
                   }),
               util::Error);
}

void ExpectBitIdentical(const GridResult& a, const GridResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  EXPECT_EQ(a.failed_cells, b.failed_cells);
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const CellResult& ca = a.cells[i];
    const CellResult& cb = b.cells[i];
    EXPECT_EQ(ca.error, cb.error);
    EXPECT_EQ(ca.hyper_period, cb.hyper_period);
    ASSERT_EQ(ca.outcomes.size(), cb.outcomes.size());
    for (std::size_t m = 0; m < ca.outcomes.size(); ++m) {
      EXPECT_EQ(Bits(ca.outcomes[m].measured_energy),
                Bits(cb.outcomes[m].measured_energy))
          << "cell " << i << " method " << m;
      EXPECT_EQ(Bits(ca.outcomes[m].predicted_energy),
                Bits(cb.outcomes[m].predicted_energy));
      EXPECT_EQ(ca.outcomes[m].deadline_misses, cb.outcomes[m].deadline_misses);
      EXPECT_EQ(ca.outcomes[m].voltage_switches,
                cb.outcomes[m].voltage_switches);
      EXPECT_EQ(ca.outcomes[m].solver_evaluations,
                cb.outcomes[m].solver_evaluations);
    }
  }
}

TEST(AffinityDeterminism, OneVsFourThreadsAndCursorAllBitIdentical) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const ExperimentGrid grid = AffinityGrid(cpu);

  const auto run = [&](int threads, CellScheduling scheduling) {
    RunOptions options;
    options.threads = threads;
    options.scheduling = scheduling;
    return RunGrid(grid, options);
  };

  const GridResult serial = run(1, CellScheduling::kFamilyAffinity);
  const GridResult parallel = run(4, CellScheduling::kFamilyAffinity);
  const GridResult cursor_serial = run(1, CellScheduling::kCursor);
  const GridResult cursor_parallel = run(4, CellScheduling::kCursor);

  ExpectBitIdentical(serial, parallel);
  ExpectBitIdentical(serial, cursor_serial);
  ExpectBitIdentical(serial, cursor_parallel);
}

}  // namespace
}  // namespace dvs::runner
