// Tests for the ACS/WCS schedulers and the feasibility repair.
#include "core/scheduler.h"

#include <gtest/gtest.h>

#include "fps/expansion.h"
#include "sim/engine.h"
#include "stats/rng.h"
#include "workload/motivation.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::core {
namespace {

TEST(Scheduler, WcsRecoversPaperFigure1) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const ScheduleResult wcs = SolveWcs(fps, cpu);
  EXPECT_FALSE(wcs.used_fallback);
  EXPECT_NEAR(wcs.schedule.end_time(0), 20.0 / 3.0, 0.02);
  EXPECT_NEAR(wcs.schedule.end_time(1), 40.0 / 3.0, 0.02);
  EXPECT_NEAR(wcs.schedule.end_time(2), 20.0, 0.02);
}

TEST(Scheduler, AcsRecoversPaperFigure2) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const ScheduleResult acs = SolveAcs(fps, cpu);
  EXPECT_FALSE(acs.used_fallback);
  EXPECT_NEAR(acs.schedule.end_time(0), 10.0, 0.05);
  EXPECT_NEAR(acs.schedule.end_time(1), 15.0, 0.05);
  EXPECT_NEAR(acs.schedule.end_time(2), 20.0, 0.05);
  // Paper's optimal average energy: 1.2e8.
  EXPECT_NEAR(acs.predicted_energy, 1.2e8, 2e5);
}

TEST(Scheduler, SolutionsAreAlwaysWorstCaseFeasible) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  for (int seed = 0; seed < 6; ++seed) {
    stats::Rng rng(static_cast<std::uint64_t>(seed) + 100);
    workload::RandomTaskSetOptions gen;
    gen.num_tasks = 3 + seed;
    gen.bcec_wcec_ratio = 0.3;
    const model::TaskSet set = workload::GenerateRandomTaskSet(gen, cpu, rng);
    const fps::FullyPreemptiveSchedule fps(set);
    const ScheduleResult wcs = SolveWcs(fps, cpu);
    const ScheduleResult acs =
        SolveSchedule(fps, cpu, Scenario::kAverage, {}, wcs.schedule);
    const sim::FeasibilityReport wr =
        sim::VerifyWorstCase(fps, wcs.schedule, cpu);
    const sim::FeasibilityReport ar =
        sim::VerifyWorstCase(fps, acs.schedule, cpu);
    EXPECT_TRUE(wr.feasible) << "seed " << seed << ": " << wr.detail;
    EXPECT_TRUE(ar.feasible) << "seed " << seed << ": " << ar.detail;
  }
}

TEST(Scheduler, AcsNeverPredictsWorseThanItsWarmStart) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  for (int seed = 0; seed < 4; ++seed) {
    stats::Rng rng(static_cast<std::uint64_t>(seed) + 7);
    workload::RandomTaskSetOptions gen;
    gen.num_tasks = 4;
    gen.bcec_wcec_ratio = 0.2;
    const model::TaskSet set = workload::GenerateRandomTaskSet(gen, cpu, rng);
    const fps::FullyPreemptiveSchedule fps(set);
    const ScheduleResult wcs = SolveWcs(fps, cpu);
    const EnergyObjective avg_objective(fps, cpu, Scenario::kAverage);
    const double warm_energy =
        avg_objective.Value(avg_objective.PackSchedule(wcs.schedule));
    const ScheduleResult acs =
        SolveSchedule(fps, cpu, Scenario::kAverage, {}, wcs.schedule);
    EXPECT_LE(acs.predicted_energy, warm_energy * (1.0 + 1e-9))
        << "seed " << seed;
  }
}

TEST(Scheduler, WcsImprovesOnVmaxAsap) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  stats::Rng rng(11);
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 5;
  const model::TaskSet set = workload::GenerateRandomTaskSet(gen, cpu, rng);
  const fps::FullyPreemptiveSchedule fps(set);
  const EnergyObjective objective(fps, cpu, Scenario::kWorst);
  const double asap_energy = objective.Value(
      objective.PackSchedule(sim::BuildVmaxAsapSchedule(fps, cpu)));
  const ScheduleResult wcs = SolveWcs(fps, cpu);
  // Stretching away from all-Vmax must reduce worst-case energy a lot.
  EXPECT_LT(wcs.predicted_energy, 0.9 * asap_energy);
}

TEST(Repair, FixesEpsilonChainViolations) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  // End-times violating the chain by epsilon and budgets off the simplex
  // by epsilon.
  const std::vector<double> ends{10.0, 15.0 - 1e-8, 20.0};
  const std::vector<double> budgets{20.0e6 + 1e-3, 20.0e6, 20.0e6 - 1e-3};
  const auto repaired = RepairSchedule(fps, cpu, ends, budgets);
  ASSERT_TRUE(repaired.has_value());
  const sim::FeasibilityReport report =
      sim::VerifyWorstCase(fps, *repaired, cpu);
  EXPECT_TRUE(report.feasible) << report.detail;
}

TEST(Repair, LiftsEndTimesOntoTheChain) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  // Grossly infeasible end-times (all zero): repair must lift them to the
  // Vmax chain {5, 10, 15}.
  const auto repaired = RepairSchedule(fps, cpu, {0.0, 0.0, 0.0},
                                       {20.0e6, 20.0e6, 20.0e6});
  ASSERT_TRUE(repaired.has_value());
  EXPECT_NEAR(repaired->end_time(0), 5.0, 1e-9);
  EXPECT_NEAR(repaired->end_time(1), 10.0, 1e-9);
  EXPECT_NEAR(repaired->end_time(2), 15.0, 1e-9);
}

TEST(Repair, RedistributesBudgetsThatOverflowSegments) {
  // Two tasks; the low-priority instance is split at t=5.  Stuff its whole
  // budget into the first segment, which cannot hold it at Vmax.
  model::Task hi;
  hi.name = "hi";
  hi.period = 5;
  hi.wcec = 8.0;   // 2 time units at Vmax
  hi.acec = 4.0;
  hi.bcec = 2.0;
  model::Task lo;
  lo.name = "lo";
  lo.period = 10;
  lo.wcec = 16.0;  // 4 time units at Vmax; segment [2,5] only holds 3
  lo.acec = 8.0;
  lo.bcec = 4.0;
  const model::TaskSet set({hi, lo});
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const fps::FullyPreemptiveSchedule fps(set);
  ASSERT_EQ(fps.sub_count(), 4u);  // hi[0], hi[1], lo.0, lo.1

  std::vector<double> ends(4);
  std::vector<double> budgets(4);
  for (std::size_t u = 0; u < 4; ++u) {
    const fps::SubInstance& sub = fps.sub(u);
    if (sub.task == 1) {
      ends[u] = sub.seg_end;
      budgets[u] = sub.k == 0 ? 16.0 : 0.0;  // everything in segment one
    } else {
      // hi instances end mid-segment so lo has room: at 2.0 and 7.0.
      ends[u] = sub.seg_begin + 2.0;
      budgets[u] = 8.0;
    }
  }
  const auto repaired = RepairSchedule(fps, cpu, ends, budgets);
  ASSERT_TRUE(repaired.has_value());
  const sim::FeasibilityReport report =
      sim::VerifyWorstCase(fps, *repaired, cpu);
  EXPECT_TRUE(report.feasible) << report.detail;
  // The overflow moved into lo's second segment.
  double lo_second = 0.0;
  for (std::size_t u = 0; u < 4; ++u) {
    if (fps.sub(u).task == 1 && fps.sub(u).k == 1) {
      lo_second = repaired->worst_budget(u);
    }
  }
  EXPECT_GT(lo_second, 3.9);
}

TEST(Repair, FailsWhenDemandTrulyExceedsCapacity) {
  // An over-utilised frame: three tasks of 32e6 cycles = 8 ms each at Vmax
  // need 24 ms of a 20 ms frame.  (Budgets are simplex-projected to WCEC
  // inside the repair, so infeasibility must come from the task set.)
  std::vector<model::Task> tasks;
  for (int i = 0; i < 3; ++i) {
    model::Task t;
    t.name = "t" + std::to_string(i);
    t.period = 20;
    t.wcec = 32.0e6;
    t.acec = 16.0e6;
    t.bcec = 8.0e6;
    tasks.push_back(t);
  }
  const model::TaskSet set(std::move(tasks));
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const auto repaired = RepairSchedule(fps, cpu, {10.0, 15.0, 20.0},
                                       {32.0e6, 32.0e6, 32.0e6});
  EXPECT_FALSE(repaired.has_value());
}

TEST(Scheduler, DefaultAlmOptionsAreSane) {
  const opt::AlmOptions alm = SchedulerOptions::DefaultAlmOptions();
  EXPECT_GT(alm.max_outer, 0u);
  EXPECT_GT(alm.inner.max_iterations, 0u);
  EXPECT_LT(alm.feasibility_tol, 1e-4);
}

}  // namespace
}  // namespace dvs::core
