// Tests for the reduced NLP formulation: forward replay semantics and the
// analytic gradient (checked against central finite differences).
#include "core/formulation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "fps/expansion.h"
#include "opt/finite_diff.h"
#include "sim/engine.h"
#include "stats/rng.h"
#include "util/error.h"
#include "workload/motivation.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace dvs::core {
namespace {

model::Task MakeTask(std::string name, std::int64_t period, double wcec,
                     double acec_frac) {
  model::Task t;
  t.name = std::move(name);
  t.period = period;
  t.wcec = wcec;
  t.acec = acec_frac * wcec;
  t.bcec = 0.25 * wcec;
  return t;
}

TEST(Formulation, MotivationObjectiveValues) {
  // The §2.2 walk-through: average energy of the two candidate schedules.
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const EnergyObjective objective(fps, cpu, Scenario::kAverage);
  ASSERT_EQ(objective.dim(), 3u);  // three end-times, no split instances

  const std::vector<double> budgets(3, 20.0e6);
  const sim::StaticSchedule wcs(fps, workload::MotivationWcsEndTimes(),
                                budgets);
  const sim::StaticSchedule acs(fps, workload::MotivationAcsEndTimes(),
                                budgets);
  const double e_wcs = objective.Value(objective.PackSchedule(wcs));
  const double e_acs = objective.Value(objective.PackSchedule(acs));
  // Hand-computed in DESIGN.md: 1.5936e8 vs 1.2e8 -> 24.7% improvement.
  EXPECT_NEAR(e_wcs, 1.5936e8, 1e5);
  EXPECT_NEAR(e_acs, 1.2e8, 1e3);
  EXPECT_NEAR((e_wcs - e_acs) / e_wcs, 0.247, 0.005);
}

TEST(Formulation, WorstScenarioMatchesWorstCaseEnergy) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const EnergyObjective objective(fps, cpu, Scenario::kWorst);
  const std::vector<double> budgets(3, 20.0e6);
  const sim::StaticSchedule wcs(fps, workload::MotivationWcsEndTimes(),
                                budgets);
  const sim::StaticSchedule acs(fps, workload::MotivationAcsEndTimes(),
                                budgets);
  // All three tasks at 3 V: 9 * 6e7 = 5.4e8; ACS worst: 4+16+16 = 7.2e8.
  EXPECT_NEAR(objective.Value(objective.PackSchedule(wcs)), 5.4e8, 1e4);
  EXPECT_NEAR(objective.Value(objective.PackSchedule(acs)), 7.2e8, 1e4);
}

TEST(Formulation, ReplayExposesChain) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const EnergyObjective objective(fps, cpu, Scenario::kAverage);
  const sim::StaticSchedule acs(fps, workload::MotivationAcsEndTimes(),
                                {20.0e6, 20.0e6, 20.0e6});
  const ForwardDetail detail = objective.Replay(objective.PackSchedule(acs));
  // Paper Fig. 2 runtime: starts 0 / 5 / 10, finishes 5 / 10 / 15, all 2 V.
  EXPECT_NEAR(detail.start[0], 0.0, 1e-9);
  EXPECT_NEAR(detail.finish[0], 5.0, 1e-9);
  EXPECT_NEAR(detail.start[1], 5.0, 1e-9);
  EXPECT_NEAR(detail.finish[1], 10.0, 1e-9);
  EXPECT_NEAR(detail.start[2], 10.0, 1e-9);
  EXPECT_NEAR(detail.finish[2], 15.0, 1e-9);
  for (double v : detail.voltage) {
    EXPECT_NEAR(v, 2.0, 1e-9);
  }
}

TEST(Formulation, BudgetVariablesOnlyForSplitInstances) {
  const model::TaskSet set({MakeTask("hi", 5, 4.0, 0.5),
                            MakeTask("lo", 10, 6.0, 0.5)});
  const fps::FullyPreemptiveSchedule fps(set);
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const EnergyObjective objective(fps, cpu, Scenario::kAverage);
  // Subs: hi[0], hi[1] single-sub; lo split into 2 -> 2 budget variables.
  EXPECT_EQ(fps.sub_count(), 4u);
  EXPECT_EQ(objective.dim(), 4u + 2u);
  int with_budget = 0;
  for (std::size_t u = 0; u < fps.sub_count(); ++u) {
    if (objective.HasBudgetVariable(u)) {
      ++with_budget;
    } else {
      EXPECT_THROW(objective.budget_index(u), util::InvalidArgumentError);
    }
  }
  EXPECT_EQ(with_budget, 2);
}

TEST(Formulation, PackExtractRoundTrip) {
  const model::TaskSet set({MakeTask("hi", 5, 4.0, 0.5),
                            MakeTask("lo", 10, 6.0, 0.5)});
  const fps::FullyPreemptiveSchedule fps(set);
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const EnergyObjective objective(fps, cpu, Scenario::kAverage);
  const sim::StaticSchedule schedule = sim::BuildVmaxAsapSchedule(fps, cpu);
  const opt::Vector x = objective.PackSchedule(schedule);
  const sim::StaticSchedule back = objective.ExtractSchedule(x);
  for (std::size_t u = 0; u < fps.sub_count(); ++u) {
    EXPECT_DOUBLE_EQ(back.end_time(u), schedule.end_time(u));
    EXPECT_DOUBLE_EQ(back.worst_budget(u), schedule.worst_budget(u));
  }
}

TEST(Formulation, ChainConstraintsHoldOnVmaxAsap) {
  const model::TaskSet set({MakeTask("a", 10, 8.0, 0.6),
                            MakeTask("b", 20, 12.0, 0.6),
                            MakeTask("c", 40, 16.0, 0.6)});
  const fps::FullyPreemptiveSchedule fps(set);
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const EnergyObjective objective(fps, cpu, Scenario::kAverage);
  const opt::Vector x =
      objective.PackSchedule(sim::BuildVmaxAsapSchedule(fps, cpu));
  for (const opt::LinearConstraint& con : objective.BuildChainConstraints()) {
    EXPECT_GE(con.Evaluate(x), -1e-9) << con.name;
  }
}

TEST(Formulation, FeasibleSetProjectionKeepsVmaxAsapFixed) {
  const model::TaskSet set({MakeTask("a", 10, 8.0, 0.6),
                            MakeTask("b", 20, 12.0, 0.6)});
  const fps::FullyPreemptiveSchedule fps(set);
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const EnergyObjective objective(fps, cpu, Scenario::kAverage);
  opt::Vector x =
      objective.PackSchedule(sim::BuildVmaxAsapSchedule(fps, cpu));
  const opt::Vector before = x;
  objective.BuildFeasibleSet()->Project(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], before[i], 1e-9);
  }
}

// --- Gradient verification -------------------------------------------------

class GradientCheckTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GradientCheckTest, AnalyticMatchesFiniteDifference) {
  const auto [seed, scenario_int] = GetParam();
  const Scenario scenario =
      scenario_int == 0 ? Scenario::kAverage : Scenario::kWorst;
  const model::LinearDvsModel cpu = workload::DefaultModel();
  stats::Rng rng(static_cast<std::uint64_t>(seed) * 31 + 5);
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = 3 + seed % 3;
  gen.bcec_wcec_ratio = 0.4;
  const model::TaskSet set = workload::GenerateRandomTaskSet(gen, cpu, rng);
  const fps::FullyPreemptiveSchedule fps(set);
  const EnergyObjective objective(fps, cpu, scenario);

  // Build a generic interior point: end-times jittered inside their
  // effective windows, budgets jittered around a uniform split.  (The
  // Vmax-ASAP point sits exactly on the w = 0 clamp and V = Vmax kinks,
  // and equal-period tasks create exact max()-branch ties at symmetric
  // points, where central differences straddle one-sided derivatives.)
  stats::Rng jitter(static_cast<std::uint64_t>(seed) * 977 + 13);
  opt::Vector x = objective.PackSchedule(sim::BuildVmaxAsapSchedule(fps, cpu));
  const std::vector<double>& cap = fps.effective_end_bounds();
  for (std::size_t u = 0; u < fps.sub_count(); ++u) {
    const fps::SubInstance& sub = fps.sub(u);
    // Gradient checks need generic positions, not feasible ones: keeping
    // the ASAP value would leave capacity-tight segments exactly on the
    // V = Vmax clamp kink.
    const double frac = jitter.Uniform(0.45, 0.9);
    x[u] = sub.seg_begin + frac * (cap[u] - sub.seg_begin);
  }
  for (const fps::InstanceRecord& rec : fps.instances()) {
    if (rec.subs.size() < 2) continue;
    const double share = set.task(rec.info.task).wcec /
                         static_cast<double>(rec.subs.size());
    for (std::size_t order : rec.subs) {
      x[objective.budget_index(order)] = share * jitter.Uniform(0.7, 1.3);
    }
  }
  objective.BuildFeasibleSet()->Project(x);

  // Per-coordinate comparison; tolerate at most two kink-straddling
  // coordinates (piecewise-smooth objective: exact branch ties carry
  // one-sided derivatives that central differences cannot resolve).
  opt::Vector analytic(x.size(), 0.0);
  objective.Gradient(x, analytic);
  const opt::Vector numeric = opt::FiniteDifferenceGradient(objective, x, 1e-7);
  std::vector<double> errors(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    errors[i] = std::fabs(analytic[i] - numeric[i]) /
                std::max({std::fabs(analytic[i]), std::fabs(numeric[i]), 1.0});
  }
  std::sort(errors.begin(), errors.end());
  const double robust_err = errors[errors.size() >= 3 ? errors.size() - 3 : 0];
  EXPECT_LT(robust_err, 1e-3) << "seed " << seed << " scenario "
                              << scenario_int << " worst " << errors.back();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GradientCheckTest,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Values(0, 1)));

TEST(Formulation, GradientExactOnMotivationInterior) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const EnergyObjective objective(fps, cpu, Scenario::kAverage);
  const opt::Vector x{8.0, 14.0, 19.0};  // strictly interior point
  EXPECT_LT(opt::GradientCheck(objective, x, 1e-3), 1e-6);
}

TEST(Formulation, RejectsWrongDimension) {
  const model::TaskSet set = workload::MotivationTaskSet();
  const model::LinearDvsModel cpu = workload::MotivationModel();
  const fps::FullyPreemptiveSchedule fps(set);
  const EnergyObjective objective(fps, cpu, Scenario::kAverage);
  EXPECT_THROW(objective.Value({1.0}), util::InvalidArgumentError);
}

}  // namespace
}  // namespace dvs::core
