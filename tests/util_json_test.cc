// util::ParseJson coverage: the parser must read back everything the
// repository's JsonWriter emits (writer -> parser round trips), reject
// malformed documents with positioned errors, and expose the accessor
// contract (Find / At / StringAt / NumberAt) the telemetry merge paths
// lean on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "util/error.h"
#include "util/json.h"

namespace dvs::util {
namespace {

TEST(JsonParser, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null").IsNull());
  EXPECT_TRUE(ParseJson("true").bool_value);
  EXPECT_FALSE(ParseJson("false").bool_value);
  EXPECT_DOUBLE_EQ(ParseJson("42").number, 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-3.5e2").number, -350.0);
  EXPECT_EQ(ParseJson("\"hi\"").string, "hi");
  EXPECT_TRUE(ParseJson("  12  ").IsNumber()) << "surrounding whitespace";
}

TEST(JsonParser, ParsesNestedContainers) {
  const JsonValue doc =
      ParseJson(R"({"a": [1, 2, {"b": "x"}], "c": {"d": true}})");
  ASSERT_TRUE(doc.IsObject());
  const JsonValue& a = doc.At("a");
  ASSERT_TRUE(a.IsArray());
  ASSERT_EQ(a.array.size(), 3u);
  EXPECT_DOUBLE_EQ(a.array[1].number, 2.0);
  EXPECT_EQ(a.array[2].StringAt("b"), "x");
  EXPECT_TRUE(doc.At("c").At("d").bool_value);
}

TEST(JsonParser, PreservesObjectMemberOrder) {
  const JsonValue doc = ParseJson(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(doc.object.size(), 3u);
  EXPECT_EQ(doc.object[0].first, "z");
  EXPECT_EQ(doc.object[1].first, "a");
  EXPECT_EQ(doc.object[2].first, "m");
}

TEST(JsonParser, DecodesStringEscapes) {
  EXPECT_EQ(ParseJson(R"("a\"b\\c\/d")").string, "a\"b\\c/d");
  EXPECT_EQ(ParseJson(R"("\n\t\r\b\f")").string, "\n\t\r\b\f");
  EXPECT_EQ(ParseJson(R"("\u0041\u00e9")").string, "A\xc3\xa9");
}

TEST(JsonParser, RoundTripsWriterOutput) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name").Value("bench \"quoted\" \\ path");
  json.Key("count").Value(static_cast<std::int64_t>(-7));
  json.Key("ratio").Value(0.30000000000000004);
  json.Key("flags").BeginArray().Value(true).Value(false).EndArray();
  json.Key("nested").BeginObject().Key("pi").Value(3.5).EndObject();
  json.EndObject();

  const JsonValue doc = ParseJson(json.str());
  EXPECT_EQ(doc.StringAt("name"), "bench \"quoted\" \\ path");
  EXPECT_DOUBLE_EQ(doc.NumberAt("count"), -7.0);
  // %.17g round-trips an IEEE double exactly.
  EXPECT_EQ(doc.NumberAt("ratio"), 0.30000000000000004);
  EXPECT_TRUE(doc.At("flags").array[0].bool_value);
  EXPECT_DOUBLE_EQ(doc.At("nested").NumberAt("pi"), 3.5);
}

// JSON has no NaN/Inf tokens: %.17g would emit bare `nan` / `inf` and the
// whole document would fail to parse.  The writer maps every non-finite
// double to null instead, so one bad metric cannot poison an artifact.
TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  JsonWriter json;
  json.BeginObject();
  json.Key("nan").Value(std::nan(""));
  json.Key("inf").Value(std::numeric_limits<double>::infinity());
  json.Key("ninf").Value(-std::numeric_limits<double>::infinity());
  json.Key("finite").Value(1.5);
  json.EndObject();
  EXPECT_EQ(json.str(),
            R"({"nan":null,"inf":null,"ninf":null,"finite":1.5})");

  const JsonValue doc = ParseJson(json.str());
  EXPECT_TRUE(doc.At("nan").IsNull());
  EXPECT_TRUE(doc.At("inf").IsNull());
  EXPECT_TRUE(doc.At("ninf").IsNull());
  EXPECT_DOUBLE_EQ(doc.NumberAt("finite"), 1.5);
}

TEST(JsonWriter, ExplicitNullRoundTrips) {
  JsonWriter json;
  json.BeginArray();
  json.Null().Value(2.0).Null();
  json.EndArray();
  EXPECT_EQ(json.str(), "[null,2,null]");

  const JsonValue doc = ParseJson(json.str());
  ASSERT_EQ(doc.array.size(), 3u);
  EXPECT_TRUE(doc.array[0].IsNull());
  EXPECT_TRUE(doc.array[2].IsNull());
}

// Non-finite values inside arrays keep the comma bookkeeping intact — the
// null substitution goes through the same BeforeValue path as any value.
TEST(JsonWriter, NonFiniteInsideArraysKeepsCommasValid) {
  JsonWriter json;
  json.BeginArray();
  json.Value(1.0).Value(std::nan("")).Value(3.0);
  json.EndArray();
  EXPECT_EQ(json.str(), "[1,null,3]");
}

TEST(JsonParser, FindReturnsNullForMissingOrNonObject) {
  const JsonValue doc = ParseJson(R"({"a": 1})");
  EXPECT_EQ(doc.Find("missing"), nullptr);
  EXPECT_NE(doc.Find("a"), nullptr);
  EXPECT_EQ(ParseJson("[1]").Find("a"), nullptr);
}

TEST(JsonParser, AccessorsThrowNamingTheKey) {
  const JsonValue doc = ParseJson(R"({"s": "x", "n": 1})");
  EXPECT_THROW(doc.At("missing"), Error);
  EXPECT_THROW(doc.StringAt("n"), Error);   // wrong kind
  EXPECT_THROW(doc.NumberAt("s"), Error);   // wrong kind
  try {
    doc.At("missing");
    FAIL() << "expected util::Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("missing"), std::string::npos);
  }
}

TEST(JsonParser, RejectsMalformedDocuments) {
  EXPECT_THROW(ParseJson(""), Error);
  EXPECT_THROW(ParseJson("{"), Error);
  EXPECT_THROW(ParseJson("[1, 2"), Error);
  EXPECT_THROW(ParseJson("{\"a\" 1}"), Error);
  EXPECT_THROW(ParseJson("{\"a\": 1,}"), Error);
  EXPECT_THROW(ParseJson("\"unterminated"), Error);
  EXPECT_THROW(ParseJson("nul"), Error);
  EXPECT_THROW(ParseJson("1 2"), Error) << "trailing content";
  EXPECT_THROW(ParseJson("\"\\x\""), Error) << "unknown escape";
}

TEST(JsonParser, ErrorsCarryByteOffsets) {
  try {
    ParseJson("{\"a\": !}");
    FAIL() << "expected util::Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("byte"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace dvs::util
