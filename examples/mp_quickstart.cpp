// Multi-core quickstart: draw a fleet-sized task set, partition it across
// identical cores with each registered strategy, run the paper's per-core
// ACS/WCS pipeline on every powered core and compare fleet energy — the
// whole src/mp surface in ~70 lines.
//
//   $ ./examples/mp_quickstart [--cores M] [--tasks N] [--idle-power P]
#include <cstdint>
#include <iostream>

#include "mp/fleet.h"
#include "mp/partitioner.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

int main(int argc, char** argv) {
  using namespace dvs;

  std::int64_t cores = 4;
  std::int64_t tasks = 12;
  double per_core_utilization = 0.7;
  double idle_power = 0.05;
  std::int64_t seed = 42;
  std::int64_t hyper_periods = 50;

  util::ArgParser parser("mp_quickstart",
                         "partitioned multi-core ACS vs WCS comparison");
  parser.AddInt("cores", &cores, "identical cores in the fleet");
  parser.AddInt("tasks", &tasks, "number of tasks in the random set");
  parser.AddDouble("idle-power", &idle_power,
                   "always-on energy/ms floor per powered core");
  parser.AddInt("seed", &seed, "random seed");
  parser.AddInt("hyper-periods", &hyper_periods, "simulated hyper-periods");
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }

    // 1. A processor model and a *fleet-sized* demand: utilisation scales
    //    with the core count, so no single core could carry the set alone.
    const model::LinearDvsModel cpu = workload::DefaultModel();
    workload::RandomTaskSetOptions gen;
    gen.num_tasks = static_cast<int>(tasks);
    gen.bcec_wcec_ratio = 0.3;
    gen.utilization = per_core_utilization * static_cast<double>(cores);
    gen.max_sub_instances = 350;
    stats::Rng rng(static_cast<std::uint64_t>(seed));
    const model::TaskSet set = workload::GenerateRandomTaskSet(gen, cpu, rng);
    std::cout << "fleet demand: " << set.Describe() << "\n"
              << "worst-case utilisation at Vmax: "
              << util::FormatPercent(set.Utilization(cpu)) << " across "
              << cores << " cores\n\n";

    // 2. Partition + per-core pipelines, once per registered strategy.
    const model::IdlePower idle{idle_power};
    core::ExperimentOptions options;
    options.hyper_periods = hyper_periods;
    options.seed = static_cast<std::uint64_t>(seed);
    const core::MethodRegistry& methods = core::MethodRegistry::Builtin();
    const std::vector<const core::ScheduleMethod*> arms = {
        &methods.Get("acs"), &methods.Get("wcs")};

    for (const std::string& name : mp::PartitionerRegistry::Builtin().Names()) {
      const mp::Partitioner& partitioner =
          mp::PartitionerRegistry::Builtin().Get(name);
      const mp::FleetResult fleet = mp::EvaluateFleet(
          set, cpu, partitioner, static_cast<int>(cores), arms, options, idle);

      std::cout << name << ": " << fleet.partition.Describe(set) << "\n"
                << "  powered cores:   " << fleet.partition.used_cores()
                << " of " << cores << "\n"
                << "  ACS fleet power: "
                << util::FormatDouble(fleet.outcomes[0].fleet.measured_energy,
                                      2)
                << " energy/ms\n"
                << "  WCS fleet power: "
                << util::FormatDouble(fleet.outcomes[1].fleet.measured_energy,
                                      2)
                << " energy/ms\n"
                << "  ACS improvement: "
                << util::FormatPercent(fleet.ImprovementOver(0, 1)) << "\n\n";
    }
    std::cout << "reading: every core runs the unmodified single-processor "
                 "ACS pipeline; the partitioner decides the fleet's energy "
                 "landscape\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
