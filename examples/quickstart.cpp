// Quickstart: build a task set, compute ACS and WCS schedules, simulate the
// greedy DVS runtime, and compare energy — the whole public API in ~60 lines.
//
//   $ ./examples/quickstart [--tasks N] [--ratio R] [--seed S]
#include <cstdint>
#include <iostream>

#include "core/pipeline.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

int main(int argc, char** argv) {
  using namespace dvs;

  std::int64_t tasks = 5;
  double ratio = 0.3;
  std::int64_t seed = 42;
  std::int64_t hyper_periods = 100;

  util::ArgParser parser("quickstart",
                         "minimal end-to-end ACS vs WCS comparison");
  parser.AddInt("tasks", &tasks, "number of tasks in the random set");
  parser.AddDouble("ratio", &ratio, "BCEC/WCEC flexibility ratio");
  parser.AddInt("seed", &seed, "random seed");
  parser.AddInt("hyper-periods", &hyper_periods, "simulated hyper-periods");
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }

    // 1. A processor model and a task set.
    const model::LinearDvsModel cpu = workload::DefaultModel();
    workload::RandomTaskSetOptions gen;
    gen.num_tasks = static_cast<int>(tasks);
    gen.bcec_wcec_ratio = ratio;
    stats::Rng rng(static_cast<std::uint64_t>(seed));
    const model::TaskSet set = workload::GenerateRandomTaskSet(gen, cpu, rng);
    std::cout << "task set: " << set.Describe() << "\n";
    std::cout << "worst-case utilisation at Vmax: "
              << util::FormatPercent(set.Utilization(cpu)) << "\n\n";

    // 2. Offline schedules + online simulation, on identical workloads.
    core::ExperimentOptions options;
    options.hyper_periods = hyper_periods;
    options.seed = static_cast<std::uint64_t>(seed);
    const core::ComparisonResult result =
        core::CompareAcsWcs(set, cpu, options);

    // 3. Report.
    std::cout << "sub-instances in the fully preemptive schedule: "
              << result.sub_instances << "\n";
    std::cout << "WCS  energy/hyper-period: " << result.wcs.measured_energy
              << "  (misses: " << result.wcs.deadline_misses << ")\n";
    std::cout << "ACS  energy/hyper-period: " << result.acs.measured_energy
              << "  (misses: " << result.acs.deadline_misses << ")\n";
    std::cout << "ACS improvement over WCS: "
              << util::FormatPercent(result.Improvement()) << "\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
