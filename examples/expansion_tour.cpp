// Tour of the fully preemptive expansion and the static-schedule machinery
// (paper §3.1, Figs. 3-5): expansion structure, total order, Vmax-ASAP
// schedule, the worst-case feasibility audit, and the case analysis.
//
//   $ ./examples/expansion_tour [--tasks N] [--seed S]
#include <cstdint>
#include <iostream>

#include "core/case_analysis.h"
#include "core/formulation.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "sim/engine.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

int main(int argc, char** argv) {
  using namespace dvs;

  std::int64_t tasks = 3;
  std::int64_t seed = 2;
  util::ArgParser parser("expansion_tour",
                         "inspect the fully preemptive schedule machinery");
  parser.AddInt("tasks", &tasks, "number of tasks");
  parser.AddInt("seed", &seed, "random seed");
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }

    const model::LinearDvsModel cpu = workload::DefaultModel();
    workload::RandomTaskSetOptions gen;
    gen.num_tasks = static_cast<int>(tasks);
    gen.bcec_wcec_ratio = 0.5;
    gen.max_sub_instances = 60;  // keep the printout readable
    stats::Rng rng(static_cast<std::uint64_t>(seed));
    const model::TaskSet set = workload::GenerateRandomTaskSet(gen, cpu, rng);

    std::cout << "task set: " << set.Describe() << "\n\n";

    const fps::FullyPreemptiveSchedule fps(set);
    std::cout << "fully preemptive expansion: " << fps.instance_count()
              << " instances -> " << fps.sub_count()
              << " sub-instances (max " << fps.max_subs_per_instance()
              << " per instance)\n";
    std::cout << "total order: " << fps.DescribeOrder() << "\n\n";

    const sim::StaticSchedule asap = sim::BuildVmaxAsapSchedule(fps, cpu);
    const core::ScheduleResult acs = core::SolveAcs(fps, cpu);

    util::TextTable table({"order", "sub-instance", "segment", "ASAP e",
                           "ACS e", "ACS budget"});
    for (std::size_t u = 0; u < fps.sub_count(); ++u) {
      const fps::SubInstance& sub = fps.sub(u);
      table.AddRow(
          {std::to_string(u),
           set.task(sub.task).name + "[" + std::to_string(sub.instance) +
               "]." + std::to_string(sub.k),
           "[" + util::FormatDouble(sub.seg_begin, 0) + ", " +
               util::FormatDouble(sub.seg_end, 0) + ")",
           util::FormatDouble(asap.end_time(u), 2),
           util::FormatDouble(acs.schedule.end_time(u), 2),
           util::FormatDouble(acs.schedule.worst_budget(u), 2)});
    }
    std::cout << table.Render() << "\n";

    const sim::FeasibilityReport audit =
        sim::VerifyWorstCase(fps, acs.schedule, cpu);
    std::cout << "worst-case audit: "
              << (audit.feasible ? "feasible" : audit.detail)
              << " (minimum chain slack "
              << util::FormatDouble(audit.worst_slack, 4) << ")\n\n";

    // Fig. 5 semantics on the first split instance found.
    for (const fps::InstanceRecord& rec : fps.instances()) {
      if (rec.subs.size() < 2) continue;
      const model::Task& task = set.task(rec.info.task);
      std::vector<double> budgets;
      for (std::size_t order : rec.subs) {
        budgets.push_back(acs.schedule.worst_budget(order));
      }
      const core::AvgSplit split =
          core::SplitAverageWorkload(task.acec, budgets);
      std::cout << "case analysis (Fig. 5) for " << task.name << "["
                << rec.info.instance << "], ACEC "
                << util::FormatDouble(task.acec, 1) << ":\n";
      for (std::size_t k = 0; k < budgets.size(); ++k) {
        std::cout << "  sub " << k << ": worst "
                  << util::FormatDouble(budgets[k], 2) << ", average "
                  << util::FormatDouble(split.avg[k], 2) << "\n";
      }
      break;
    }
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
