// Trace replay: evaluate every schedule method under a recorded sequence of
// per-job workload fractions instead of a stochastic model.
//
// The trace CSV holds one normalised fraction per row (0 = BCEC, 1 = WCEC;
// extra columns and '#' comments are ignored — see workload/scenario.h).
// Normalisation is what lets one recording replay against any task set:
// job j of task i executes BCEC_i + f_j * (WCEC_i - BCEC_i) cycles.  A
// sample recording ships in examples/sample_trace.csv.
//
//   $ ./example_trace_replay [--trace path/to/trace.csv] [--tasks N]
//
// Without --trace the example writes sample_trace.csv's contents to a
// temporary file first, so it runs from any directory.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "core/api.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"
#include "workload/scenario.h"

namespace {

/// Mirrors examples/sample_trace.csv: a bursty 12-job recording — three
/// near-best warmup jobs, a heavy phase, then a mixed tail.
const char kSampleTrace[] =
    "# sample per-job workload fractions (0 = BCEC, 1 = WCEC)\n"
    "fraction,comment\n"
    "0.10,warmup\n0.12,warmup\n0.15,warmup\n"
    "0.92,heavy\n0.88,heavy\n0.95,heavy\n0.90,heavy\n"
    "0.35,mixed\n0.60,mixed\n0.20,mixed\n0.75,mixed\n0.45,mixed\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace dvs;

  std::string trace_path;
  std::int64_t tasks = 5;
  std::int64_t seed = 42;
  std::int64_t hyper_periods = 100;

  util::ArgParser parser("trace_replay",
                         "replay a recorded per-job workload trace through "
                         "every schedule method");
  parser.AddString("trace", &trace_path,
                   "trace CSV of per-job fractions (default: the built-in "
                   "sample recording)");
  parser.AddInt("tasks", &tasks, "number of tasks in the random set");
  parser.AddInt("seed", &seed, "task-set seed");
  parser.AddInt("hyper-periods", &hyper_periods, "simulated hyper-periods");
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }

    // 1. Load the trace (writing the built-in sample out first if no file
    //    was given, to demonstrate the CSV round-trip).
    std::string temp_path;
    if (trace_path.empty()) {
      temp_path = "trace_replay_sample.csv";
      std::ofstream out(temp_path);
      out << kSampleTrace;
      trace_path = temp_path;
      std::cout << "no --trace given; using the built-in sample recording\n";
    }
    const auto scenario = workload::LoadTraceScenario(trace_path);

    // 2. A processor model and a task set.
    const model::LinearDvsModel cpu = workload::DefaultModel();
    workload::RandomTaskSetOptions gen;
    gen.num_tasks = static_cast<int>(tasks);
    gen.bcec_wcec_ratio = 0.3;
    stats::Rng rng(static_cast<std::uint64_t>(seed));
    const model::TaskSet set = workload::GenerateRandomTaskSet(gen, cpu, rng);
    std::cout << "task set: " << set.Describe() << "\n\n";

    // 3. Every registered method under the identical replay.
    core::ExperimentOptions options;
    options.hyper_periods = hyper_periods;
    options.seed = static_cast<std::uint64_t>(seed);
    options.scenario = scenario.get();

    const fps::FullyPreemptiveSchedule fps(set);
    core::MethodContext context(fps, cpu, options.scheduler);
    const core::MethodRegistry& registry = core::MethodRegistry::Builtin();
    double wcs_energy = 0.0;
    for (const std::string& name : registry.Names()) {
      const core::MethodOutcome outcome =
          EvaluateMethod(registry.Get(name), context, options);
      if (name == "wcs") {
        wcs_energy = outcome.measured_energy;
      }
      std::cout << util::PadRight(name, 16)
                << "energy/hyper-period: " << outcome.measured_energy
                << "  (misses: " << outcome.deadline_misses << ")\n";
    }
    std::cout << "\nreplay is deterministic: rerunning this command "
                 "reproduces these numbers bit-for-bit (WCS reference "
              << wcs_energy << ")\n";
    if (!temp_path.empty()) {
      std::remove(temp_path.c_str());
    }
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
