// Walk-through of the paper's §2.2 motivational example with ASCII Gantt
// charts: the static WCEC-optimal schedule (Fig. 1a), its greedy runtime
// under average workloads (Fig. 1b), the ACS schedule (Fig. 2) and the
// worst-case behaviour of both.
//
//   $ ./examples/motivation_example
#include <iostream>

#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/workload.h"
#include "sim/engine.h"
#include "sim/policy.h"
#include "sim/trace.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/motivation.h"

namespace {

void ShowRuntime(const char* title, const dvs::fps::FullyPreemptiveSchedule& fps,
                 const dvs::sim::StaticSchedule& schedule,
                 const dvs::model::DvsModel& cpu,
                 dvs::model::FixedScenario scenario) {
  using namespace dvs;
  const model::TaskSet& set = fps.task_set();
  const model::FixedWorkload sampler(set, scenario);
  const sim::GreedyReclaimPolicy policy(cpu);
  stats::Rng rng(1);
  sim::SimOptions options;
  options.record_trace = true;
  const sim::SimResult result =
      sim::Simulate(fps, schedule, cpu, policy, sampler, rng, options);
  std::cout << title << "\n"
            << sim::RenderTraceGantt(result.trace, set, 20.0, 63)
            << "total energy: " << result.total_energy
            << "   deadline misses: " << result.deadline_misses << "\n\n";
}

}  // namespace

int main() {
  using namespace dvs;
  try {
    const model::TaskSet set = workload::MotivationTaskSet();
    const model::LinearDvsModel cpu = workload::MotivationModel();
    const fps::FullyPreemptiveSchedule fps(set);

    std::cout << "Paper §2.2: three tasks sharing a 20 ms frame, "
                 "WCEC = 2e7 cycles (20 V*ms each), ACEC = WCEC/2\n\n";

    // The two candidate schedules, recovered by the solvers.
    const core::ScheduleResult wcs = core::SolveWcs(fps, cpu);
    const core::ScheduleResult acs = core::SolveSchedule(
        fps, cpu, core::Scenario::kAverage, {}, wcs.schedule);

    std::cout << "WCS end-times (paper Fig. 1): ";
    for (std::size_t u = 0; u < 3; ++u) {
      std::cout << util::FormatDouble(wcs.schedule.end_time(u), 2) << " ";
    }
    std::cout << "ms\nACS end-times (paper Fig. 2): ";
    for (std::size_t u = 0; u < 3; ++u) {
      std::cout << util::FormatDouble(acs.schedule.end_time(u), 2) << " ";
    }
    std::cout << "ms\n\n";

    ShowRuntime("Fig. 1(b) — WCS schedule, average workloads:", fps,
                wcs.schedule, cpu, model::FixedScenario::kAverage);
    ShowRuntime("Fig. 2 — ACS schedule, average workloads:", fps,
                acs.schedule, cpu, model::FixedScenario::kAverage);
    ShowRuntime("WCS schedule, worst-case workloads:", fps, wcs.schedule,
                cpu, model::FixedScenario::kWorst);
    ShowRuntime("ACS schedule, worst-case workloads (note the 4 V "
                "catch-up, paper §2.2):",
                fps, acs.schedule, cpu, model::FixedScenario::kWorst);
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
