// GAP avionics case study (paper §4, Fig. 6 right): the Generic Avionics
// Platform task set under ACS vs WCS, with a ratio sweep.
//
//   $ ./examples/gap_avionics [--hyper-periods N]
#include <cstdint>
#include <iostream>

#include "core/pipeline.h"
#include "fps/expansion.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"
#include "workload/gap.h"
#include "workload/presets.h"

int main(int argc, char** argv) {
  using namespace dvs;

  std::int64_t hyper_periods = 120;
  std::int64_t seed = 1;
  util::ArgParser parser("gap_avionics",
                         "ACS vs WCS on the Generic Avionics Platform");
  parser.AddInt("hyper-periods", &hyper_periods, "simulated hyper-periods");
  parser.AddInt("seed", &seed, "workload seed");
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }

    const model::LinearDvsModel cpu = workload::DefaultModel();
    {
      workload::GapOptions options;
      const model::TaskSet set = workload::GapTaskSet(options, cpu);
      std::cout << "GAP — Generic Avionics Platform (Locke et al. "
                   "reconstruction)\n";
      util::TextTable spec({"task", "period (ms)", "WCEC"});
      for (const model::Task& t : set.tasks()) {
        spec.AddRow({t.name, std::to_string(t.period),
                     util::FormatDouble(t.wcec, 1)});
      }
      const fps::FullyPreemptiveSchedule fps(set);
      std::cout << spec.Render() << "\nhyper-period: " << set.hyper_period()
                << " ms,  sub-instances: " << fps.sub_count() << "\n\n";
    }

    util::TextTable results({"BCEC/WCEC", "WCS energy", "ACS energy",
                             "improvement"});
    for (double ratio : {0.1, 0.5, 0.9}) {
      workload::GapOptions options;
      options.bcec_wcec_ratio = ratio;
      const model::TaskSet set = workload::GapTaskSet(options, cpu);
      core::ExperimentOptions experiment;
      experiment.hyper_periods = hyper_periods;
      experiment.seed = static_cast<std::uint64_t>(seed);
      const core::ComparisonResult result =
          core::CompareAcsWcs(set, cpu, experiment);
      results.AddRow({util::FormatDouble(ratio, 1),
                      util::FormatDouble(result.wcs.measured_energy, 1),
                      util::FormatDouble(result.acs.measured_energy, 1),
                      util::FormatPercent(result.Improvement())});
    }
    std::cout << results.Render()
              << "\npaper reference: ~30% at ratio 0.1, shrinking with the "
                 "ratio\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
