// CNC controller case study (paper §4, Fig. 6 right): schedules the 8-task
// machine-tool controller with ACS and WCS and reports per-task energy.
//
//   $ ./examples/cnc_controller [--ratio R] [--hyper-periods N]
#include <cstdint>
#include <iostream>

#include "core/pipeline.h"
#include "fps/expansion.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"
#include "workload/cnc.h"
#include "workload/presets.h"

int main(int argc, char** argv) {
  using namespace dvs;

  double ratio = 0.1;
  std::int64_t hyper_periods = 200;
  std::int64_t seed = 1;
  util::ArgParser parser("cnc_controller",
                         "ACS vs WCS on the CNC machine-tool controller");
  parser.AddDouble("ratio", &ratio, "BCEC/WCEC flexibility ratio");
  parser.AddInt("hyper-periods", &hyper_periods, "simulated hyper-periods");
  parser.AddInt("seed", &seed, "workload seed");
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }

    const model::LinearDvsModel cpu = workload::DefaultModel();
    workload::CncOptions options;
    options.bcec_wcec_ratio = ratio;
    const model::TaskSet set = workload::CncTaskSet(options, cpu);

    std::cout << "CNC controller (Kim et al., RTSS'96 reconstruction)\n";
    util::TextTable spec({"task", "period (us)", "WCEC", "ACEC"});
    for (const model::Task& t : set.tasks()) {
      spec.AddRow({t.name, std::to_string(t.period),
                   util::FormatDouble(t.wcec, 1),
                   util::FormatDouble(t.acec, 1)});
    }
    std::cout << spec.Render() << "\n";

    const fps::FullyPreemptiveSchedule fps(set);
    std::cout << "hyper-period: " << set.hyper_period()
              << " us,  sub-instances: " << fps.sub_count()
              << ",  worst-case utilisation: "
              << util::FormatPercent(set.Utilization(cpu)) << "\n\n";

    core::ExperimentOptions experiment;
    experiment.hyper_periods = hyper_periods;
    experiment.seed = static_cast<std::uint64_t>(seed);
    const core::ComparisonResult result =
        core::CompareAcsWcs(set, cpu, experiment);

    std::cout << "WCS energy/hyper-period: " << result.wcs.measured_energy
              << "\nACS energy/hyper-period: " << result.acs.measured_energy
              << "\nACS improvement: "
              << util::FormatPercent(result.Improvement())
              << "   (paper reports ~41% at ratio 0.1)\n";
    std::cout << "deadline misses: ACS " << result.acs.deadline_misses
              << ", WCS " << result.wcs.deadline_misses << "\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
